"""Direct edge-case coverage for ``repro.util.rwlock.RWLock``.

The concurrent-service suite exercises the lock through the cache
pipeline; these tests pin the lock's own contract where it was only
covered indirectly: release underflow on the write-reentrant path, the
read→write upgrade refusal, and writer-preference ordering under an
arriving-reader stream.
"""

from __future__ import annotations

import threading

import pytest

from repro.util.rwlock import NullRWLock, RWLock


class TestReleaseUnderflow:
    def test_write_reentrancy_then_underflow(self):
        lock = RWLock()
        lock.acquire_write()
        lock.acquire_write()           # reentrant: depth 2
        lock.release_write()
        lock.release_write()           # balanced
        with pytest.raises(RuntimeError, match="non-owning"):
            lock.release_write()       # underflow: no hold left

    def test_release_write_without_any_acquire(self):
        lock = RWLock()
        with pytest.raises(RuntimeError, match="non-owning"):
            lock.release_write()

    def test_release_write_by_foreign_thread(self):
        lock = RWLock()
        lock.acquire_write()
        errors: list[BaseException] = []

        def foreign():
            try:
                lock.release_write()
            except BaseException as exc:   # pragma: no branch
                errors.append(exc)

        thread = threading.Thread(target=foreign)
        thread.start()
        thread.join()
        assert len(errors) == 1 and isinstance(errors[0], RuntimeError)
        lock.release_write()           # the owner's release still works

    def test_release_read_without_acquire(self):
        lock = RWLock()
        with pytest.raises(RuntimeError, match="matching acquire"):
            lock.release_read()

    def test_read_release_balanced_then_underflow(self):
        lock = RWLock()
        lock.acquire_read()
        lock.acquire_read()            # reentrant read
        lock.release_read()
        lock.release_read()
        with pytest.raises(RuntimeError, match="matching acquire"):
            lock.release_read()

    def test_write_held_nested_read_released_out_of_order(self):
        # The documented "against LIFO convention" branch: the nested
        # read taken under a write hold may be released *after* the
        # write hold itself without corrupting the shared reader count.
        lock = RWLock()
        lock.acquire_write()
        lock.acquire_read()            # nested under our own write
        lock.release_write()
        lock.release_read()            # out of order, still balanced
        # The lock must be fully free: a fresh writer on another thread
        # can take it immediately.
        acquired = threading.Event()

        def writer():
            lock.acquire_write()
            acquired.set()
            lock.release_write()

        thread = threading.Thread(target=writer)
        thread.start()
        thread.join(timeout=5)
        assert acquired.is_set()


class TestUpgradeRefusal:
    def test_acquire_write_under_read_raises(self):
        lock = RWLock()
        lock.acquire_read()
        with pytest.raises(RuntimeError, match="upgrade"):
            lock.acquire_write()
        # The refusal must leave the lock coherent: finish the read,
        # then the same thread may write.
        lock.release_read()
        lock.acquire_write()
        lock.release_write()

    def test_upgrade_via_context_managers(self):
        lock = RWLock()
        with lock.read():
            with pytest.raises(RuntimeError, match="upgrade"):
                with lock.write():   # noqa: SIM117 — the nesting IS the test
                    pass   # pragma: no cover

    def test_refused_upgrade_does_not_leak_writers_waiting(self):
        # The failed upgrade must not leave _writers_waiting stuck — a
        # later arriving reader would block forever against a phantom
        # writer.
        lock = RWLock()
        with lock.read():
            with pytest.raises(RuntimeError):
                lock.acquire_write()
        done = threading.Event()

        def reader():
            with lock.read():
                done.set()

        thread = threading.Thread(target=reader)
        thread.start()
        thread.join(timeout=5)
        assert done.is_set()

    def test_write_then_read_is_not_an_upgrade(self):
        lock = RWLock()
        with lock.write():
            with lock.read():      # downgrade-style nesting is legal
                pass
            with lock.write():     # and write reentrancy composes
                pass


class TestWriterPreference:
    def test_waiting_writer_beats_arriving_reader(self):
        """Reader holds; writer queues; a *later* reader must not
        overtake the waiting writer (starvation protection)."""
        lock = RWLock()
        order: list[str] = []
        order_mutex = threading.Lock()
        reader_in = threading.Event()
        writer_waiting = threading.Event()
        late_reader_started = threading.Event()

        def first_reader():
            with lock.read():
                reader_in.set()
                # Hold until both the writer and the late reader are
                # queued behind us.
                writer_waiting.wait(5)
                late_reader_started.wait(5)
                # Give the late reader a beat to (incorrectly) slip in.
                import time
                time.sleep(0.05)

        def writer():
            reader_in.wait(5)
            writer_waiting.set()
            lock.acquire_write()
            with order_mutex:
                order.append("writer")
            lock.release_write()

        def late_reader():
            writer_waiting.wait(5)
            late_reader_started.set()
            with lock.read():
                with order_mutex:
                    order.append("late-reader")

        threads = [threading.Thread(target=t)
                   for t in (first_reader, writer, late_reader)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10)
        assert order == ["writer", "late-reader"]

    def test_reentrant_read_bypasses_writer_gate(self):
        """A thread already inside the read side must be able to take a
        nested read even with a writer queued — otherwise the waiting
        writer deadlocks the reader it is waiting for."""
        lock = RWLock()
        reader_in = threading.Event()
        writer_waiting = threading.Event()
        nested_ok = threading.Event()

        def reader():
            with lock.read():
                reader_in.set()
                writer_waiting.wait(5)
                with lock.read():      # must not queue behind the writer
                    nested_ok.set()

        def writer():
            reader_in.wait(5)
            # Signal *after* we are provably queued: acquire_write blocks,
            # so flip the event from a helper just before the call.
            writer_waiting.set()
            lock.acquire_write()
            lock.release_write()

        threads = [threading.Thread(target=reader),
                   threading.Thread(target=writer)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10)
        assert nested_ok.is_set()

    def test_null_lock_is_a_true_noop(self):
        lock = NullRWLock()
        # Wildly unbalanced usage must never raise: the null lock is
        # the zero-cost single-session path.
        lock.release_write()
        lock.release_read()
        with lock.read():
            with lock.write():     # "upgrade" is fine on the null lock
                pass
