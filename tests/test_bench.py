"""Bench harness, experiments and reporting tests (tiny scale)."""

from __future__ import annotations

import pytest

from repro.bench.experiments import (
    PAPER_FIG4,
    PAPER_FIG5,
    PAPER_FIG6,
    ablation_churn,
    figure4,
    figure5,
    figure6,
    hit_anatomy,
)
from repro.bench.harness import (
    ALL_WORKLOADS,
    MATCHER_NAMES,
    SCALES,
    BenchScale,
    ExperimentHarness,
    current_scale,
)
from repro.bench.reporting import format_value, render_markdown, render_table

TINY = BenchScale(
    name="tiny", num_graphs=40, mean_vertices=10.0, std_vertices=3.0,
    max_vertices=20, num_queries=24, num_batches=2, ops_per_batch=2,
    cache_capacity=10, window_capacity=3, warmup_queries=0,
    answer_pool_size=15, no_answer_pool_size=4,
)


@pytest.fixture(scope="module")
def harness() -> ExperimentHarness:
    return ExperimentHarness(TINY)


class TestScales:
    def test_registry(self):
        assert set(SCALES) == {"smoke", "small", "medium", "large"}
        for scale in SCALES.values():
            assert scale.num_graphs > 0
            assert scale.cache_capacity == 100  # the paper's setting
            assert scale.window_capacity == 20

    def test_current_scale_env(self, monkeypatch):
        monkeypatch.setenv("GCPLUS_BENCH_SCALE", "small")
        assert current_scale().name == "small"
        monkeypatch.setenv("GCPLUS_BENCH_SCALE", "bogus")
        with pytest.raises(ValueError):
            current_scale()
        monkeypatch.delenv("GCPLUS_BENCH_SCALE")
        assert current_scale().name == "smoke"

    def test_paper_reference_tables_complete(self):
        assert set(PAPER_FIG5) == set(ALL_WORKLOADS)
        assert set(PAPER_FIG6) == set(ALL_WORKLOADS)
        assert set(PAPER_FIG4) == {
            (m, w) for m in MATCHER_NAMES for w in ALL_WORKLOADS
        }


class TestHarness:
    def test_workload_names(self, harness):
        for name in ALL_WORKLOADS:
            wl = harness.workload(name)
            assert len(wl) == TINY.num_queries
        with pytest.raises(ValueError):
            harness.workload("nope")

    def test_workloads_cached(self, harness):
        assert harness.workload("ZZ") is harness.workload("ZZ")

    def test_run_memoized(self, harness):
        a = harness.run("ZZ", "vf2+", "base")
        b = harness.run("ZZ", "vf2+", "base")
        assert a is b

    def test_answers_equal_across_models(self, harness):
        base = harness.run("ZZ", "vf2+", "base")
        evi = harness.run("ZZ", "vf2+", "EVI")
        con = harness.run("ZZ", "vf2+", "CON")
        assert base.answer_signature == evi.answer_signature
        assert base.answer_signature == con.answer_signature

    def test_speedup_structure(self, harness):
        time_speedup, test_speedup = harness.speedup("ZZ", "vf2+", "CON")
        assert time_speedup > 0
        assert test_speedup >= 1.0

    def test_run_result_accessors(self, harness):
        r = harness.run("ZZ", "vf2+", "CON")
        assert r.queries == TINY.num_queries
        assert r.avg_query_time_ms > 0
        assert r.avg_overhead_ms >= 0
        assert r.avg_method_tests >= 0
        assert r.summary["queries"] == TINY.num_queries


class TestExperiments:
    def test_figure4_rows(self, harness):
        rows, table = figure4(harness, matchers=("vf2+",),
                              workloads=("ZZ",))
        assert len(rows) == 1
        assert "Figure 4" in table
        assert rows[0]["paper EVI"] == 1.79

    def test_figure5_method_independence(self, harness):
        rows, table = figure5(harness, workloads=("ZZ", "UU"))
        assert len(rows) == 2
        assert all(r["CON speedup"] >= r["EVI speedup"] * 0.5 for r in rows)
        assert "Figure 5" in table

    def test_figure6_rows(self, harness):
        rows, _ = figure6(harness, workloads=("ZZ",))
        assert rows[0]["vf2 qtime ms"] > 0
        assert rows[0]["CON overhead ms"] >= 0

    def test_hit_anatomy_rows(self, harness):
        rows, _ = hit_anatomy(harness, workloads=("ZZ",))
        assert rows[0]["queries"] == TINY.num_queries

    def test_ablation_churn_zero_equality(self, harness):
        rows, _ = ablation_churn(harness, batch_multipliers=(0.0, 1.0))
        assert rows[0]["EVI test speedup"] == pytest.approx(
            rows[0]["CON test speedup"]
        )


class TestReporting:
    def test_format_value(self):
        assert format_value(0.0) == "0"
        assert format_value(3.14159) == "3.14"
        assert format_value(0.001234) == "0.001"
        assert format_value(12345.6) == "12,346"
        assert format_value("text") == "text"

    def test_render_table(self):
        out = render_table("Title", [{"a": 1, "b": 2.5}])
        assert "Title" in out
        assert "a" in out and "b" in out
        assert "2.50" in out

    def test_render_table_empty(self):
        out = render_table("Empty", [], columns=["x"])
        assert "Empty" in out

    def test_render_markdown(self):
        out = render_markdown("T", [{"x": 1}])
        assert out.startswith("### T")
        assert "| x |" in out
        assert "|---|" in out

    def test_column_selection(self):
        out = render_table("T", [{"a": 1, "b": 2}], columns=["b"])
        assert "b" in out
        lines = out.splitlines()
        assert all("a |" not in line for line in lines[2:3])


class TestMonitor:
    def test_query_metrics_properties(self):
        from repro.runtime.monitor import QueryMetrics

        m = QueryMetrics(discovery_seconds=1.0, prune_seconds=2.0,
                         verify_seconds=3.0, analyze_seconds=0.5,
                         validate_seconds=0.25, admission_seconds=0.25)
        assert m.query_seconds == 6.0
        assert m.overhead_seconds == 1.0
        assert m.consistency_seconds == 0.75

    def test_monitor_zero_test_tracking(self):
        from repro.runtime.monitor import QueryMetrics, StatisticsMonitor

        mon = StatisticsMonitor()
        mon.record(QueryMetrics(method_tests=0, exact_hits=1,
                                exact_hit_valid=True))
        mon.record(QueryMetrics(method_tests=5))
        assert mon.queries == 2
        assert mon.zero_test_queries == 1
        assert mon.queries_with_exact_hit == 1
        assert mon.queries_with_valid_exact_hit == 1
        assert mon.total_method_tests == 5
