"""Shared test fixtures, hypothesis strategies and oracles.

The oracle functions here are deliberately *independent* of the library
implementation (plain brute-force recursion over injections) so that the
property-based tests compare two unrelated code paths.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, settings, strategies as st

from repro.graphs.graph import LabeledGraph

# Keep hypothesis runs fast and CI-stable: sub-iso oracles are O(n!) in
# the worst case, so strategies below bound graph sizes tightly.
settings.register_profile(
    "repro",
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


# ----------------------------------------------------------------------
# Brute-force oracles
# ----------------------------------------------------------------------
def brute_force_subiso(query: LabeledGraph, host: LabeledGraph) -> bool:
    """Independent non-induced sub-iso decision (label-preserving)."""
    if query.num_vertices > host.num_vertices:
        return False
    candidates = [
        [v for v in host.vertices() if host.label(v) == query.label(u)]
        for u in query.vertices()
    ]

    def extend(u: int, used: set[int], mapping: dict[int, int]) -> bool:
        if u == query.num_vertices:
            return True
        for v in candidates[u]:
            if v in used:
                continue
            ok = True
            for n in query.neighbors(u):
                if n in mapping and not host.has_edge(mapping[n], v):
                    ok = False
                    break
            if ok:
                mapping[u] = v
                used.add(v)
                if extend(u + 1, used, mapping):
                    return True
                del mapping[u]
                used.discard(v)
        return False

    return extend(0, set(), {})


def brute_force_answer(store, query: LabeledGraph, query_type) -> set[int]:
    """Ground-truth answer set for a query against a GraphStore."""
    from repro.cache.entry import QueryType

    out: set[int] = set()
    for gid, graph in store.items():
        if query_type is QueryType.SUBGRAPH:
            hit = brute_force_subiso(query, graph)
        else:
            hit = brute_force_subiso(graph, query)
        if hit:
            out.add(gid)
    return out


def brute_force_isomorphic(a: LabeledGraph, b: LabeledGraph) -> bool:
    """Exact isomorphism via two-way containment + equal sizes."""
    return (
        a.num_vertices == b.num_vertices
        and a.num_edges == b.num_edges
        and brute_force_subiso(a, b)
    )


# ----------------------------------------------------------------------
# Hypothesis strategies
# ----------------------------------------------------------------------
@st.composite
def labeled_graphs(draw, max_vertices: int = 8, alphabet: str = "abc",
                   min_vertices: int = 1,
                   edge_probability: float | None = None):
    """Random small labeled graphs."""
    n = draw(st.integers(min_vertices, max_vertices))
    labels = [draw(st.sampled_from(alphabet)) for _ in range(n)]
    p = (edge_probability if edge_probability is not None
         else draw(st.floats(0.0, 0.8)))
    seed = draw(st.integers(0, 2**32 - 1))
    rng = random.Random(seed)
    g = LabeledGraph()
    for lab in labels:
        g.add_vertex(lab)
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < p:
                g.add_edge(u, v)
    return g


@st.composite
def graph_permutations(draw, max_vertices: int = 7, alphabet: str = "ab"):
    """(graph, isomorphic permuted copy) pairs."""
    g = draw(labeled_graphs(max_vertices=max_vertices, alphabet=alphabet))
    perm = list(g.vertices())
    rng = random.Random(draw(st.integers(0, 2**32 - 1)))
    rng.shuffle(perm)
    inverse = {v: i for i, v in enumerate(perm)}
    h = LabeledGraph.from_edges(
        [g.label(perm[i]) for i in range(g.num_vertices)],
        [(inverse[u], inverse[v]) for u, v in g.edges()],
    )
    return g, h


@pytest.fixture
def rng() -> random.Random:
    return random.Random(1234)


@pytest.fixture
def path_graph() -> LabeledGraph:
    """C-C-O path."""
    return LabeledGraph.from_edges(["C", "C", "O"], [(0, 1), (1, 2)])


@pytest.fixture
def triangle_graph() -> LabeledGraph:
    return LabeledGraph.from_edges(["C", "C", "O"],
                                   [(0, 1), (1, 2), (0, 2)])
