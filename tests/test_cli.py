"""CLI tests: gen-dataset → gen-workload → run, end to end."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.graphs import io as graph_io


@pytest.fixture
def dataset_file(tmp_path):
    target = tmp_path / "data.tve"
    code = main([
        "gen-dataset", "--num-graphs", "40", "--mean-vertices", "12",
        "--std-vertices", "4", "--max-vertices", "30",
        "--out", str(target),
    ])
    assert code == 0
    return target


class TestGenDataset:
    def test_writes_parseable_graphs(self, dataset_file, capsys):
        graphs = graph_io.load_file(dataset_file)
        assert len(graphs) == 40
        assert all(g.num_vertices >= 4 for _, g in graphs)


class TestGenWorkload:
    @pytest.mark.parametrize("kind", ["ZZ", "UU", "0%"])
    def test_kinds(self, dataset_file, tmp_path, kind):
        out = tmp_path / "wl.tve"
        code = main([
            "gen-workload", "--dataset", str(dataset_file),
            "--kind", kind, "--num-queries", "15", "--out", str(out),
        ])
        assert code == 0
        assert len(graph_io.load_file(out)) == 15

    def test_unknown_kind(self, dataset_file, tmp_path, capsys):
        code = main([
            "gen-workload", "--dataset", str(dataset_file),
            "--kind", "XY", "--num-queries", "5",
            "--out", str(tmp_path / "wl.tve"),
        ])
        assert code == 2
        assert "unknown workload kind" in capsys.readouterr().err


class TestRun:
    @pytest.fixture
    def workload_file(self, dataset_file, tmp_path):
        out = tmp_path / "wl.tve"
        main(["gen-workload", "--dataset", str(dataset_file),
              "--kind", "ZZ", "--num-queries", "12", "--out", str(out)])
        return out

    def test_run_con(self, dataset_file, workload_file, capsys):
        code = main([
            "run", "--dataset", str(dataset_file),
            "--workload", str(workload_file), "--model", "CON",
            "--change-batches", "2", "--ops-per-batch", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "sub-iso tests" in out
        assert "cache anatomy" in out

    def test_run_bare(self, dataset_file, workload_file, capsys):
        code = main([
            "run", "--dataset", str(dataset_file),
            "--workload", str(workload_file), "--model", "none",
        ])
        assert code == 0
        assert "cache anatomy" not in capsys.readouterr().out

    def test_run_supergraph_with_retro(self, dataset_file, workload_file,
                                       capsys):
        code = main([
            "run", "--dataset", str(dataset_file),
            "--workload", str(workload_file), "--model", "CON",
            "--query-type", "supergraph", "--retro-budget", "5",
            "--change-batches", "1",
        ])
        assert code == 0

    def test_empty_workload_rejected(self, dataset_file, tmp_path,
                                     capsys):
        empty = tmp_path / "empty.tve"
        empty.write_text("", encoding="utf-8")
        code = main([
            "run", "--dataset", str(dataset_file),
            "--workload", str(empty),
        ])
        assert code == 2
