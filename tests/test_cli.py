"""CLI tests: gen-dataset → gen-workload → run, end to end."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.graphs import io as graph_io


@pytest.fixture
def dataset_file(tmp_path):
    target = tmp_path / "data.tve"
    code = main([
        "gen-dataset", "--num-graphs", "40", "--mean-vertices", "12",
        "--std-vertices", "4", "--max-vertices", "30",
        "--out", str(target),
    ])
    assert code == 0
    return target


class TestGenDataset:
    def test_writes_parseable_graphs(self, dataset_file, capsys):
        graphs = graph_io.load_file(dataset_file)
        assert len(graphs) == 40
        assert all(g.num_vertices >= 4 for _, g in graphs)


class TestGenWorkload:
    @pytest.mark.parametrize("kind", ["ZZ", "UU", "0%"])
    def test_kinds(self, dataset_file, tmp_path, kind):
        out = tmp_path / "wl.tve"
        code = main([
            "gen-workload", "--dataset", str(dataset_file),
            "--kind", kind, "--num-queries", "15", "--out", str(out),
        ])
        assert code == 0
        assert len(graph_io.load_file(out)) == 15

    def test_unknown_kind(self, dataset_file, tmp_path, capsys):
        code = main([
            "gen-workload", "--dataset", str(dataset_file),
            "--kind", "XY", "--num-queries", "5",
            "--out", str(tmp_path / "wl.tve"),
        ])
        assert code == 2
        assert "unknown workload kind" in capsys.readouterr().err


class TestRun:
    @pytest.fixture
    def workload_file(self, dataset_file, tmp_path):
        out = tmp_path / "wl.tve"
        main(["gen-workload", "--dataset", str(dataset_file),
              "--kind", "ZZ", "--num-queries", "12", "--out", str(out)])
        return out

    def test_run_con(self, dataset_file, workload_file, capsys):
        code = main([
            "run", "--dataset", str(dataset_file),
            "--workload", str(workload_file), "--model", "CON",
            "--change-batches", "2", "--ops-per-batch", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "sub-iso tests" in out
        assert "cache anatomy" in out

    def test_run_bare(self, dataset_file, workload_file, capsys):
        code = main([
            "run", "--dataset", str(dataset_file),
            "--workload", str(workload_file), "--model", "none",
        ])
        assert code == 0
        assert "cache anatomy" not in capsys.readouterr().out

    def test_run_supergraph_with_retro(self, dataset_file, workload_file,
                                       capsys):
        code = main([
            "run", "--dataset", str(dataset_file),
            "--workload", str(workload_file), "--model", "CON",
            "--query-type", "supergraph", "--retro-budget", "5",
            "--change-batches", "1",
        ])
        assert code == 0

    def test_empty_workload_rejected(self, dataset_file, tmp_path,
                                     capsys):
        empty = tmp_path / "empty.tve"
        empty.write_text("", encoding="utf-8")
        code = main([
            "run", "--dataset", str(dataset_file),
            "--workload", str(empty),
        ])
        assert code == 2


class TestSnapshotErrorPaths:
    """Operator-facing snapshot failures: one diagnostic line on stderr
    and a non-zero exit — never a traceback (regression: these used to
    escape as raw SnapshotMismatchError/ValueError crashes)."""

    @pytest.fixture
    def tve(self, tmp_path):
        from repro.graphs.graph import LabeledGraph

        def write(name, labels_list):
            graphs = [
                LabeledGraph.from_edges(
                    list(labels),
                    [(i, i + 1) for i in range(len(labels) - 1)])
                for labels in labels_list
            ]
            target = tmp_path / name
            graph_io.dump_file(target, list(enumerate(graphs)))
            return target

        return write

    @pytest.fixture
    def snapshot_file(self, tve, tmp_path):
        dataset = tve("a.tve", ["CCO", "CCC", "CNO", "COO"])
        workload = tve("wl.tve", ["CO", "CC"])
        snap = tmp_path / "cache.snap.jsonl"
        assert main([
            "snapshot", "save", "--dataset", str(dataset),
            "--workload", str(workload), "--out", str(snap),
        ]) == 0
        return snap

    def assert_one_line_error(self, capsys, fragment):
        err = capsys.readouterr().err
        assert fragment in err
        assert len(err.strip().splitlines()) == 1, (
            f"expected a single diagnostic line, got:\n{err}")
        assert "Traceback" not in err

    def test_load_malformed_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.snap.jsonl"
        bad.write_text("this is not a snapshot\n", encoding="utf-8")
        code = main(["snapshot", "load", "--path", str(bad)])
        assert code == 2
        self.assert_one_line_error(capsys, "cannot load snapshot")

    def test_load_missing_file(self, tmp_path, capsys):
        code = main(["snapshot", "load", "--path",
                     str(tmp_path / "nope.snap.jsonl")])
        assert code == 2
        self.assert_one_line_error(capsys, "cannot load snapshot")

    def test_restore_against_foreign_dataset(self, snapshot_file, tve,
                                             capsys):
        other = tve("b.tve", ["NNN", "NNO", "ONO", "OOO"])
        code = main(["snapshot", "load", "--path", str(snapshot_file),
                     "--dataset", str(other)])
        assert code == 2
        err = capsys.readouterr().err
        assert "cannot restore snapshot" in err
        assert "different dataset" in err
        assert "Traceback" not in err

    def test_run_warm_start_config_mismatch(self, snapshot_file, tve,
                                            capsys):
        dataset = tve("a2.tve", ["CCO", "CCC", "CNO", "COO"])
        workload = tve("wl2.tve", ["CO"])
        code = main([
            "run", "--dataset", str(dataset),
            "--workload", str(workload), "--model", "EVI",
            "--warm-start", str(snapshot_file),
        ])
        assert code == 2
        self.assert_one_line_error(capsys, "warm-start failed")

    def test_run_warm_start_malformed_snapshot(self, tve, tmp_path,
                                               capsys):
        dataset = tve("a3.tve", ["CCO", "CCC"])
        workload = tve("wl3.tve", ["CO"])
        bad = tmp_path / "bad2.snap.jsonl"
        bad.write_text("{}\n", encoding="utf-8")
        code = main([
            "run", "--dataset", str(dataset),
            "--workload", str(workload), "--model", "CON",
            "--warm-start", str(bad),
        ])
        assert code == 2
        self.assert_one_line_error(capsys, "warm-start failed")
