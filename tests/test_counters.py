"""Monotonic counter contract for the service/monitor/cache trio.

``/metrics`` exports these as Prometheus *counters*, and Prometheus
rate() arithmetic silently corrupts on any decrease — so the contract
under test is strict: every value from ``counters()`` is cumulative
and never goes down, not even across ``purge_cache()``/``clear()``
(which reset the *cache*, not its history), snapshot restores, or
concurrent recording.
"""

from __future__ import annotations

import threading

from repro.api import GCConfig, GraphCacheService
from repro.dataset.store import GraphStore
from repro.graphs.graph import LabeledGraph
from repro.runtime.monitor import StatisticsMonitor

COUNTER_KEYS = (
    "queries", "cache_hits", "cache_misses", "admissions", "evictions",
    "purges", "admissions_skipped", "method_tests", "internal_tests",
    "tests_saved",
)


def path(labels: str) -> LabeledGraph:
    return LabeledGraph.from_edges(
        list(labels), [(i, i + 1) for i in range(len(labels) - 1)]
    )


def make_service(**overrides) -> GraphCacheService:
    config = dict(model="CON", lock_mode="rw")
    config.update(overrides)
    store = GraphStore.from_graphs(
        [path("CCO"), path("CCC"), path("CNO"), path("CCN")])
    return GraphCacheService(store, GCConfig(**config))


def assert_monotone(before: dict, after: dict) -> None:
    for key in COUNTER_KEYS:
        assert after[key] >= before[key], (
            f"counter {key!r} went backwards: {before[key]} -> {after[key]}")


class TestServiceCounters:
    def test_all_keys_present_and_integer(self):
        with make_service() as service:
            counters = service.counters()
        for key in COUNTER_KEYS:
            assert key in counters
            assert isinstance(counters[key], int)

    def test_queries_and_hits_accumulate(self):
        with make_service() as service:
            for _ in range(3):
                service.execute(path("CO"))
            counters = service.counters()
            assert counters["queries"] == 3
            # First execution misses, repeats hit the warmed entry.
            assert counters["cache_hits"] >= 1
            assert counters["cache_misses"] >= 1
            assert (counters["cache_hits"]
                    + counters["cache_misses"]) == counters["queries"]

    def test_purge_does_not_reset_history(self):
        with make_service() as service:
            for labels in ("CO", "CC", "CN"):
                service.execute(path(labels))
            before = service.counters()
            service.purge()
            after = service.counters()
            assert_monotone(before, after)
            assert after["purges"] == before["purges"] + 1
            assert after["queries"] == before["queries"]
            # The cache emptied; its lifetime ledger did not.
            assert service.cache.cache_size == 0
            assert service.cache.window_size == 0

    def test_counters_monotone_across_mixed_traffic(self):
        with make_service() as service:
            previous = service.counters()
            added = service.add_graph(path("COO"))
            steps = [
                lambda: service.execute(path("CO")),
                lambda: service.execute(path("CO")),
                lambda: service.purge(),
                lambda: service.execute(path("CC")),
                lambda: service.delete_graph(added),
                lambda: service.execute(path("CC")),
            ]
            for step in steps:
                step()
                current = service.counters()
                assert_monotone(previous, current)
                previous = current

    def test_counters_thread_safe(self):
        """Readers racing executors must never observe hits+misses
        exceeding queries (both are updated under the monitor mutex)."""
        with make_service(max_sessions=4) as service:
            stop = threading.Event()
            violations: list[dict] = []

            def reader():
                while not stop.is_set():
                    c = service.counters()
                    if c["cache_hits"] + c["cache_misses"] > c["queries"]:
                        violations.append(c)

            threads = [threading.Thread(target=reader) for _ in range(2)]
            for t in threads:
                t.start()
            for _ in range(30):
                service.execute(path("CO"))
            stop.set()
            for t in threads:
                t.join()
            assert not violations


class TestMonitorCounters:
    def test_monitor_counters_standalone(self):
        monitor = StatisticsMonitor()
        counters = monitor.counters()
        assert counters["queries"] == 0
        assert counters["cache_hits"] == 0
        assert counters["cache_misses"] == 0

    def test_summary_reports_hit_miss_split(self):
        with make_service() as service:
            service.execute(path("CO"))
            service.execute(path("CO"))
            summary = service.summary()
        assert summary["cache_hits"] + summary["cache_misses"] == 2
