"""Synthetic AIDS-like dataset generator tests."""

from __future__ import annotations

import pytest

from repro.datasets.aids import (
    AIDS_LABEL_WEIGHTS,
    AidsLikeConfig,
    generate_aids_like,
    load_aids_file,
)
from repro.graphs import io


class TestLabelTable:
    def test_62_labels_like_aids(self):
        assert len(AIDS_LABEL_WEIGHTS) == 62

    def test_carbon_dominates(self):
        total = sum(AIDS_LABEL_WEIGHTS.values())
        assert AIDS_LABEL_WEIGHTS["C"] / total > 0.5


class TestGenerator:
    def test_count_and_determinism(self):
        a = generate_aids_like(num_graphs=40, mean_vertices=12,
                               std_vertices=4, seed=5)
        b = generate_aids_like(num_graphs=40, mean_vertices=12,
                               std_vertices=4, seed=5)
        assert len(a) == 40
        assert a == b

    def test_different_seeds_differ(self):
        a = generate_aids_like(num_graphs=10, mean_vertices=10, seed=1)
        b = generate_aids_like(num_graphs=10, mean_vertices=10, seed=2)
        assert a != b

    def test_size_bounds_respected(self):
        graphs = generate_aids_like(num_graphs=60, mean_vertices=20,
                                    std_vertices=15, min_vertices=5,
                                    max_vertices=30, seed=3)
        for g in graphs:
            assert 5 <= g.num_vertices <= 30

    def test_molecule_like_shape(self):
        """Connected, sparse: |E| slightly above |V| − 1 on average."""
        graphs = generate_aids_like(num_graphs=80, mean_vertices=20,
                                    std_vertices=6, seed=4)
        assert all(g.is_connected() for g in graphs)
        avg_v = sum(g.num_vertices for g in graphs) / len(graphs)
        avg_e = sum(g.num_edges for g in graphs) / len(graphs)
        surplus = avg_e - (avg_v - 1)
        assert 0.5 < surplus < 6.0  # ring edges, mean 2.5 by default

    def test_label_skew_carbon_most_common(self):
        graphs = generate_aids_like(num_graphs=50, mean_vertices=20,
                                    seed=6)
        counts: dict[str, int] = {}
        for g in graphs:
            for lab, n in g.label_multiset().items():
                counts[str(lab)] = counts.get(str(lab), 0) + n
        assert max(counts, key=counts.get) == "C"
        total = sum(counts.values())
        assert counts["C"] / total > 0.5

    def test_config_object(self):
        cfg = AidsLikeConfig(num_graphs=5, mean_vertices=8.0,
                             std_vertices=2.0, max_vertices=20)
        assert len(generate_aids_like(cfg)) == 5

    def test_config_and_overrides_exclusive(self):
        with pytest.raises(TypeError):
            generate_aids_like(AidsLikeConfig(num_graphs=5), num_graphs=3)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            AidsLikeConfig(num_graphs=0)
        with pytest.raises(ValueError):
            AidsLikeConfig(min_vertices=1)
        with pytest.raises(ValueError):
            AidsLikeConfig(min_vertices=10, max_vertices=5)

    def test_paper_scale_defaults(self):
        cfg = AidsLikeConfig()
        assert cfg.num_graphs == 40_000
        assert cfg.mean_vertices == 45.0
        assert cfg.std_vertices == 22.0
        assert cfg.max_vertices == 245


class TestLoader:
    def test_load_real_format(self, tmp_path):
        graphs = generate_aids_like(num_graphs=6, mean_vertices=8,
                                    std_vertices=2, seed=7)
        target = tmp_path / "aids.txt"
        io.dump_file(target, list(enumerate(graphs)))
        loaded = load_aids_file(target)
        assert loaded == graphs

    def test_load_orders_by_id(self, tmp_path):
        graphs = generate_aids_like(num_graphs=3, mean_vertices=6,
                                    std_vertices=1, seed=8)
        target = tmp_path / "aids.txt"
        io.dump_file(target, [(2, graphs[2]), (0, graphs[0]),
                              (1, graphs[1])])
        assert load_aids_file(target) == graphs
