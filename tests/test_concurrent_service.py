"""Deterministic concurrency tests for the shared-cache serving layer.

Three tiers of scrutiny:

* **RWLock semantics** — shared readers, exclusive writer, write
  reentrancy, upgrade refusal: the primitives everything else trusts.
* **Barrier-driven interleavings** — 2-thread schedules forced through
  explicit barriers/events (never sleeps-as-synchronisation): both
  threads provably inside the read phase together, admissions racing at
  a window boundary, a purge blocked behind an in-flight query, and a
  dataset mutation landing in the read→write gap (the admission-skip
  path).
* **Whole-trace oracle runs** — seeded N-thread × M-query replays with
  interleaved ChangePlan mutations whose answers must equal an
  independent sequential replay per stream index (the acceptance run:
  8 threads × 500 Type B queries), with structural invariants asserted
  at every epoch barrier by the driver.
"""

from __future__ import annotations

import threading

import pytest

from repro.api import GCConfig, GraphCacheService
from repro.bench.concurrent import (
    ConcurrentDriver,
    assert_quiescent_invariants,
    sequential_replay,
)
from repro.dataset.change_plan import ChangePlan
from repro.dataset.store import GraphStore
from repro.datasets.aids import generate_aids_like
from repro.graphs.graph import LabeledGraph
from repro.util.rwlock import NullRWLock, RWLock
from repro.workloads.typeb import TypeBConfig, generate_type_b


def path(labels: str) -> LabeledGraph:
    return LabeledGraph.from_edges(
        labels, [(i, i + 1) for i in range(len(labels) - 1)]
    )


DATASET = [path("CCO"), path("CCN"), path("CO"), path("CN"), path("CCON")]


def small_service(**overrides) -> GraphCacheService:
    defaults = dict(lock_mode="rw", max_sessions=8)
    defaults.update(overrides)
    return GraphCacheService(GraphStore.from_graphs(DATASET),
                             GCConfig(**defaults))


# ----------------------------------------------------------------------
# RWLock semantics
# ----------------------------------------------------------------------
class TestRWLock:
    def test_readers_share(self):
        lock = RWLock()
        inside = threading.Barrier(2, timeout=5)

        def reader():
            with lock.read():
                inside.wait()  # deadlocks (→ timeout) unless shared

        threads = [threading.Thread(target=reader) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10)
        assert not any(t.is_alive() for t in threads)

    def test_writer_excludes_readers(self):
        lock = RWLock()
        order: list[str] = []
        writer_in = threading.Event()
        release_writer = threading.Event()

        def writer():
            with lock.write():
                writer_in.set()
                release_writer.wait(5)
                order.append("writer done")

        def reader():
            writer_in.wait(5)
            with lock.read():
                order.append("reader ran")

        tw = threading.Thread(target=writer)
        tr = threading.Thread(target=reader)
        tw.start()
        writer_in.wait(5)
        tr.start()
        # The reader must be parked behind the writer; let it prove it.
        release_writer.set()
        tw.join(timeout=10)
        tr.join(timeout=10)
        assert order == ["writer done", "reader ran"]

    def test_write_reentrant_for_owner(self):
        lock = RWLock()
        with lock.write():
            with lock.write():
                with lock.read():  # nested read inside write: no-op
                    pass
        # Fully released: another thread can acquire immediately.
        acquired = threading.Event()

        def prober():
            with lock.write():
                acquired.set()

        t = threading.Thread(target=prober)
        t.start()
        t.join(timeout=10)
        assert acquired.is_set()

    def test_write_held_read_survives_out_of_order_release(self):
        """Releasing a write-held read *after* the write lock must not
        corrupt the shared reader count (regression: it used to drive
        the count to -1, deadlocking every future writer)."""
        lock = RWLock()
        lock.acquire_write()
        lock.acquire_read()
        lock.release_write()
        lock.release_read()
        acquired = threading.Event()

        def prober():
            with lock.write():
                acquired.set()

        t = threading.Thread(target=prober)
        t.start()
        t.join(timeout=10)
        assert acquired.is_set()

    def test_upgrade_refused(self):
        lock = RWLock()
        with lock.read():
            with pytest.raises(RuntimeError, match="upgrade"):
                lock.acquire_write()

    def test_unbalanced_release_refused(self):
        lock = RWLock()
        with pytest.raises(RuntimeError):
            lock.release_read()
        with pytest.raises(RuntimeError):
            lock.release_write()

    def test_null_lock_is_inert(self):
        lock = NullRWLock()
        with lock.read(), lock.write():
            pass


# ----------------------------------------------------------------------
# Session surface
# ----------------------------------------------------------------------
class TestSessions:
    def test_sessions_share_one_cache(self):
        service = small_service()
        with service.session() as a, service.session() as b:
            a.execute(path("CO"))
            b.execute(path("CO"))
            # Second execution hit the first session's cached entry.
            assert service.cache.admissions == 2
            assert service.monitor.queries == 2
            assert a.queries_executed == 1
            assert b.queries_executed == 1
        service.close()

    def test_max_sessions_enforced_and_slot_freed(self):
        service = small_service(max_sessions=1)
        first = service.session()
        with pytest.raises(RuntimeError, match="max_sessions"):
            service.session()
        first.close()
        with service.session():
            pass  # slot freed
        service.close()

    def test_lock_mode_none_refuses_sessions(self):
        service = small_service(lock_mode="none")
        with pytest.raises(RuntimeError, match="lock_mode"):
            service.session()
        service.close()

    def test_auto_mode_upgrades_lock_on_first_session(self):
        service = small_service(lock_mode="auto")
        assert isinstance(service.cache.lock, NullRWLock)
        with service.session():
            assert isinstance(service.cache.lock, RWLock)
        service.close()

    def test_closing_service_closes_sessions(self):
        service = small_service()
        session = service.session()
        service.close()
        assert session.closed
        with pytest.raises(RuntimeError):
            session.execute(path("CO"))

    def test_closed_session_refuses_queries(self):
        service = small_service()
        session = service.session()
        session.close()
        with pytest.raises(RuntimeError, match="closed"):
            session.execute(path("CO"))
        assert service.open_sessions == 0
        service.close()


# ----------------------------------------------------------------------
# Barrier-driven interleavings (explicit coordination, no sleeps)
# ----------------------------------------------------------------------
def _sync_discovery(service: GraphCacheService, barrier: threading.Barrier):
    """Make every pipeline rendezvous inside the read phase: discovery
    waits on ``barrier``, so all parties provably hold the read lock
    simultaneously before racing onward to admission."""
    original = service.discovery.discover

    def discover(query, index, features=None):
        barrier.wait(timeout=10)
        return original(query, index, features)

    service.discovery.discover = discover
    return original


class TestInterleavings:
    def test_two_thread_admission_promotes_exactly_once(self):
        """Two queries in-flight together at a window boundary: both
        read phases overlap (proven by the barrier), the two admissions
        serialise, the full window promotes exactly once, and the cache
        respects capacity."""
        service = small_service(window_capacity=2, cache_capacity=1)
        barrier = threading.Barrier(2, timeout=10)
        _sync_discovery(service, barrier)
        promotions: list = []
        evictions: list = []
        service.on_promotion(promotions.append)
        service.on_eviction(evictions.append)

        results: dict[str, frozenset] = {}

        def run(name: str, query: LabeledGraph, session) -> None:
            results[name] = frozenset(session.execute(query).answer_ids)

        with service.session() as sa, service.session() as sb:
            ta = threading.Thread(target=run, args=("a", path("CO"), sa))
            tb = threading.Thread(target=run, args=("b", path("CN"), sb))
            ta.start()
            tb.start()
            ta.join(timeout=10)
            tb.join(timeout=10)
        assert not (ta.is_alive() or tb.is_alive()), "deadlocked pipeline"

        assert results["a"] == {0, 2, 4}
        assert results["b"] == {1, 3}
        # Both admissions landed; the filled window promoted once and the
        # replacement policy trimmed the cache back to capacity.
        assert service.cache.admissions == 2
        assert len(promotions) == 1
        assert len(promotions[0].entry_ids) == 2
        assert len(evictions) == 1
        assert service.cache.cache_size == 1
        assert service.cache.window_size == 0
        assert_quiescent_invariants(service)
        service.close()

    def test_purge_blocks_behind_in_flight_query(self):
        """`CacheManager.clear` while a query holds the read lock must
        serialise, not corrupt: the purge provably does not complete
        until the read phase releases."""
        service = small_service()
        service.execute(path("CO"))  # seed one entry

        entered = threading.Event()
        gate = threading.Event()
        original = service.discovery.discover

        def held_discover(query, index, features=None):
            entered.set()
            assert gate.wait(timeout=10)
            return original(query, index, features)

        service.discovery.discover = held_discover
        purge_done = threading.Event()

        def query_thread():
            service.execute(path("CN"))

        def purge_thread():
            service.purge()
            purge_done.set()

        tq = threading.Thread(target=query_thread)
        tq.start()
        assert entered.wait(timeout=10)
        tp = threading.Thread(target=purge_thread)
        tp.start()
        # Liveness probe: while the query holds the read lock the purge
        # must be parked on the write lock.
        assert not purge_done.wait(timeout=0.2)
        gate.set()
        tq.join(timeout=10)
        tp.join(timeout=10)
        assert purge_done.is_set()
        # Legal outcomes: purge before the query's admission (1 entry
        # left) or after it (0 entries).  Never a corrupted in-between.
        assert service.cache.cache_size + service.cache.window_size <= 1
        assert_quiescent_invariants(service)
        service.close()

    def test_admission_skipped_when_dataset_moves_in_the_gap(self):
        """A mutation landing between a query's read phase and its
        admission makes the computed entry stale; the pipeline must
        decline to cache it (answers are unaffected)."""
        service = small_service()
        store = service.store
        armed = {"on": False}

        class GapLock(RWLock):
            def acquire_write(self) -> None:
                if armed["on"]:
                    armed["on"] = False
                    # Simulates another client's ADD sneaking in just
                    # before this query's admission write-acquisition.
                    store.add_graph(path("CCO"))
                super().acquire_write()

        service.cache.lock = GapLock()
        armed["on"] = True
        result = service.execute(path("CO"))
        assert result.metrics.admission_skipped
        assert result.answer_ids == {0, 2, 4}  # pre-mutation answer
        assert service.cache.admissions == 0
        assert service.monitor.admissions_skipped == 1
        # The next query reconciles and caches normally again.
        follow_up = service.execute(path("CO"))
        assert not follow_up.metrics.admission_skipped
        assert follow_up.answer_ids == {0, 2, 4, 5}
        assert service.cache.admissions == 1
        assert_quiescent_invariants(service)
        service.close()


# ----------------------------------------------------------------------
# Whole-trace oracle runs
# ----------------------------------------------------------------------
def _trace(num_graphs: int, num_queries: int, *, dataset_seed: int,
           workload_seed: int, plan_seed: int, num_batches: int):
    graphs = generate_aids_like(
        num_graphs=num_graphs, mean_vertices=7.0, std_vertices=2.5,
        max_vertices=12, seed=dataset_seed,
    )
    workload = generate_type_b(graphs, TypeBConfig(
        num_queries=num_queries, no_answer_probability=0.2,
        answer_pool_size=max(num_queries // 5, 10),
        no_answer_pool_size=max(num_queries // 20, 5),
        seed=workload_seed,
    ))
    queries = [q.graph for q in workload.queries]
    plan = ChangePlan.generate(graphs, num_queries=num_queries,
                               num_batches=num_batches, ops_per_batch=6,
                               seed=plan_seed)
    return graphs, queries, plan


class TestOracleRuns:
    @pytest.mark.parametrize("threads,model", [(2, "CON"), (4, "CON"),
                                               (4, "EVI")])
    def test_threaded_runs_match_sequential_replay(self, threads, model):
        graphs, queries, plan = _trace(
            60, 80, dataset_seed=101, workload_seed=202, plan_seed=303,
            num_batches=4,
        )
        oracle = sequential_replay(graphs, queries, plan,
                                   GCConfig(model=model))
        service = GraphCacheService(
            GraphStore.from_graphs(graphs),
            GCConfig(model=model, lock_mode="rw", max_sessions=threads),
        )
        try:
            outcome = ConcurrentDriver(service, threads).run(queries, plan)
            assert_quiescent_invariants(service)
        finally:
            service.close()
        assert outcome.answers == oracle.answers  # per stream index
        assert outcome.answer_multiset() == oracle.answer_multiset()
        assert outcome.applied_ops == oracle.applied_ops

    def test_acceptance_8_threads_500_type_b_queries(self):
        """The acceptance trace: 500-query Type B workload, interleaved
        mutations, 8 threads — answer multiset (and in fact every
        per-index answer) identical to a sequential replay."""
        graphs, queries, plan = _trace(
            120, 500, dataset_seed=2017, workload_seed=424242,
            plan_seed=77, num_batches=6,
        )
        oracle = sequential_replay(graphs, queries, plan, GCConfig())
        service = GraphCacheService(
            GraphStore.from_graphs(graphs),
            GCConfig(lock_mode="rw", max_sessions=8),
        )
        try:
            outcome = ConcurrentDriver(service, 8).run(queries, plan)
            assert_quiescent_invariants(service)
        finally:
            service.close()
        assert outcome.answer_multiset() == oracle.answer_multiset()
        assert outcome.answers == oracle.answers
        assert outcome.applied_ops > 0, "the trace must mutate the dataset"

    def test_driver_is_repeatable(self):
        """Same trace, two driver runs on fresh services: identical
        answers (schedule nondeterminism never leaks into results)."""
        graphs, queries, plan = _trace(
            40, 60, dataset_seed=9, workload_seed=8, plan_seed=7,
            num_batches=3,
        )

        def one_run():
            service = GraphCacheService(
                GraphStore.from_graphs(graphs),
                GCConfig(lock_mode="rw", max_sessions=4),
            )
            try:
                return ConcurrentDriver(service, 4).run(queries, plan)
            finally:
                service.close()

        assert one_run().answers == one_run().answers
