"""LabeledGraph unit and property tests."""

from __future__ import annotations

import pytest
from hypothesis import given

from repro.graphs.graph import LabeledGraph
from tests.conftest import labeled_graphs


class TestConstruction:
    def test_empty(self):
        g = LabeledGraph()
        assert g.num_vertices == 0
        assert g.num_edges == 0
        assert list(g.edges()) == []
        assert g.is_connected()  # vacuously

    def test_from_edges(self, path_graph):
        assert path_graph.num_vertices == 3
        assert path_graph.num_edges == 2
        assert path_graph.labels == ("C", "C", "O")

    def test_copy_independent(self, path_graph):
        c = path_graph.copy()
        c.add_edge(0, 2)
        assert not path_graph.has_edge(0, 2)
        assert c.num_edges == 3

    def test_add_vertex_returns_id(self):
        g = LabeledGraph()
        assert g.add_vertex("X") == 0
        assert g.add_vertex("Y") == 1


class TestEdges:
    def test_add_edge_symmetric(self, path_graph):
        assert path_graph.has_edge(0, 1)
        assert path_graph.has_edge(1, 0)
        assert not path_graph.has_edge(0, 2)

    def test_self_loop_rejected(self):
        g = LabeledGraph.from_edges("AB", [])
        with pytest.raises(ValueError):
            g.add_edge(1, 1)

    def test_duplicate_edge_rejected(self, path_graph):
        with pytest.raises(ValueError):
            path_graph.add_edge(1, 0)

    def test_out_of_range_rejected(self, path_graph):
        with pytest.raises(IndexError):
            path_graph.add_edge(0, 9)

    def test_remove_edge(self, path_graph):
        path_graph.remove_edge(0, 1)
        assert not path_graph.has_edge(0, 1)
        assert path_graph.num_edges == 1

    def test_remove_missing_edge_rejected(self, path_graph):
        with pytest.raises(ValueError):
            path_graph.remove_edge(0, 2)

    def test_edges_enumerated_once(self, triangle_graph):
        edges = list(triangle_graph.edges())
        assert len(edges) == 3
        assert all(u < v for u, v in edges)

    def test_has_edge_out_of_range_false(self, path_graph):
        assert not path_graph.has_edge(17, 0)

    def test_non_edges(self, path_graph):
        assert list(path_graph.non_edges()) == [(0, 2)]

    def test_version_bumps_on_mutation(self):
        g = LabeledGraph.from_edges("AB", [(0, 1)])
        v0 = g.version
        g.remove_edge(0, 1)
        assert g.version > v0
        g.set_label(0, "Z")
        assert g.label(0) == "Z"


class TestStructure:
    def test_degree_and_neighbors(self, triangle_graph):
        assert triangle_graph.degree(0) == 2
        assert triangle_graph.neighbors(1) == {0, 2}
        assert sorted(triangle_graph.neighbor_labels(1)) == ["C", "O"]

    def test_label_multiset(self, triangle_graph):
        assert triangle_graph.label_multiset() == {"C": 2, "O": 1}

    def test_connectivity(self):
        g = LabeledGraph.from_edges("ABCD", [(0, 1), (2, 3)])
        assert not g.is_connected()
        comps = g.connected_components()
        assert sorted(sorted(c) for c in comps) == [[0, 1], [2, 3]]
        g.add_edge(1, 2)
        assert g.is_connected()

    def test_induced_subgraph(self, triangle_graph):
        sub = triangle_graph.induced_subgraph([0, 2])
        assert sub.num_vertices == 2
        assert sub.num_edges == 1
        assert sub.labels == ("C", "O")

    def test_induced_subgraph_dedupes(self, triangle_graph):
        sub = triangle_graph.induced_subgraph([1, 1, 2])
        assert sub.num_vertices == 2

    def test_induced_subgraph_bad_vertex(self, triangle_graph):
        with pytest.raises(IndexError):
            triangle_graph.induced_subgraph([5])


class TestDunder:
    def test_structural_equality(self):
        a = LabeledGraph.from_edges("AB", [(0, 1)])
        b = LabeledGraph.from_edges("AB", [(0, 1)])
        c = LabeledGraph.from_edges("BA", [(0, 1)])
        assert a == b
        assert a != c
        assert a != "not a graph"

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(LabeledGraph())

    def test_repr(self, path_graph):
        assert "|V|=3" in repr(path_graph)


@given(labeled_graphs(max_vertices=10))
def test_handshake_lemma(g):
    assert sum(g.degree(v) for v in g.vertices()) == 2 * g.num_edges


@given(labeled_graphs(max_vertices=10))
def test_components_partition_vertices(g):
    comps = g.connected_components()
    seen = [v for comp in comps for v in comp]
    assert sorted(seen) == list(g.vertices())


@given(labeled_graphs(max_vertices=8))
def test_copy_equals_original(g):
    assert g.copy() == g


@given(labeled_graphs(max_vertices=8))
def test_edge_and_non_edge_counts_complete(g):
    n = g.num_vertices
    assert g.num_edges + sum(1 for _ in g.non_edges()) == n * (n - 1) // 2
