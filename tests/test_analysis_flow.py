"""Unit tests for the gclint v2 flow engine: the intraprocedural CFG,
the project call graph, and the lock-state dataflow that the GC1xx
rules are built on.

These pin the *engine* semantics the rules rely on — may/must entry
contexts, upgrade detection, acquisition-order edges — independently of
any rule's message or scoping, so a rule regression and an engine
regression fail different tests.
"""

from __future__ import annotations

import ast
import textwrap
from pathlib import Path

from repro.analysis.callgraph import build_project_graph, module_key
from repro.analysis.cfg import build_cfg
from repro.analysis.core import collect_modules
from repro.analysis.lockstate import (
    MUTEX,
    READ,
    WRITE,
    may_pairs,
    module_flows,
)


def _func(source: str) -> ast.FunctionDef:
    tree = ast.parse(textwrap.dedent(source))
    (node,) = [n for n in tree.body if isinstance(n, ast.FunctionDef)]
    return node


def _modules(tmp_path: Path, **files: str):
    # Everything goes under src/ so module_key() yields stable dotted
    # names ("cache.m") and intra-tree imports resolve.
    for rel, body in files.items():
        target = tmp_path / "src" / rel.replace("__", "/")
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(body), encoding="utf-8")
    modules, parse_errors = collect_modules([tmp_path])
    assert parse_errors == []
    return modules


# ----------------------------------------------------------------------
# CFG construction
# ----------------------------------------------------------------------
class TestCfg:
    def test_linear_body_chains_entry_to_exit(self):
        cfg = build_cfg(_func("""\
            def f():
                a = 1
                b = 2
                return a + b
            """))
        # entry → 3 stmt nodes → exit, all reachable.
        kinds = [n.kind for n in cfg.nodes]
        assert kinds.count("stmt") == 3
        reached = {cfg.entry}
        frontier = [cfg.entry]
        while frontier:
            for dst, _pops in cfg.succs[frontier.pop()]:
                if dst not in reached:
                    reached.add(dst)
                    frontier.append(dst)
        assert cfg.exit in reached

    def test_with_nodes_pair_enter_and_exit(self):
        cfg = build_cfg(_func("""\
            def f(lock):
                with lock:
                    pass
            """))
        enters = [n for n in cfg.nodes if n.kind == "with_enter"]
        exits = [n for n in cfg.nodes if n.kind == "with_exit"]
        assert len(enters) == 1 and len(exits) == 1
        assert exits[0].enter_id == enters[0].index

    def test_branches_rejoin(self):
        cfg = build_cfg(_func("""\
            def f(flag):
                if flag:
                    a = 1
                else:
                    a = 2
                return a
            """))
        # The return statement has two predecessors (both arms).
        (ret_idx,) = [n.index for n in cfg.nodes
                      if n.kind == "stmt"
                      and isinstance(n.ast_node, ast.Return)]
        preds = [src for src, edges in cfg.succs.items()
                 for dst, _pops in edges if dst == ret_idx]
        assert len(preds) == 2

    def test_break_edge_pops_the_with_region(self):
        cfg = build_cfg(_func("""\
            def f(lock, items):
                for item in items:
                    with lock:
                        break
                return 0
            """))
        (enter,) = [n.index for n in cfg.nodes if n.kind == "with_enter"]
        popping = [pops for _src, edges in cfg.succs.items()
                   for _dst, pops in edges if enter in pops]
        assert popping, "break out of a with must record the region pop"


# ----------------------------------------------------------------------
# Call graph
# ----------------------------------------------------------------------
class TestCallGraph:
    def test_module_key_strips_src_prefix(self):
        assert module_key("src/repro/cache/manager.py") == \
            "repro.cache.manager"
        assert module_key("pkg/__init__.py") == "pkg"

    def test_self_method_call_resolves(self, tmp_path):
        graph = build_project_graph(_modules(tmp_path, **{
            "cache__m.py": """\
                class Manager:
                    def outer(self):
                        return self.inner()

                    def inner(self):
                        return 1
                """,
        }))
        outer = "cache.m.Manager.outer"
        inner = "cache.m.Manager.inner"
        assert inner in [callee for callee, _ in graph.edges[outer]]
        assert outer in [caller for caller, _cid, _ln
                         in graph.callers[inner]]

    def test_attr_type_flows_through_constructor(self, tmp_path):
        graph = build_project_graph(_modules(tmp_path, **{
            "cache__helper.py": """\
                class Helper:
                    def run(self):
                        return 1
                """,
            "cache__owner.py": """\
                from cache.helper import Helper


                class Owner:
                    def __init__(self):
                        self.helper = Helper()

                    def go(self):
                        return self.helper.run()
                """,
        }))
        owner_cls = graph.classes["cache.owner.Owner"]
        assert owner_cls.attr_types["helper"] == "cache.helper.Helper"
        assert "cache.helper.Helper.run" in \
            [callee for callee, _ in graph.edges["cache.owner.Owner.go"]]


# ----------------------------------------------------------------------
# Lock-state dataflow
# ----------------------------------------------------------------------
_PREAMBLE = """\
    class Manager:
        def __init__(self, lock, mutex):
            self.lock = lock
            self._mutex = mutex

"""


class TestLockState:
    def _index(self, tmp_path, methods):
        # _modules dedents the whole file by the preamble's 4 spaces, so
        # 8 here leaves the methods indented one level inside the class.
        body = _PREAMBLE + textwrap.indent(textwrap.dedent(methods),
                                           "        ")
        (module,) = _modules(tmp_path, **{"cache__m.py": body})
        return module_flows(module)

    def _flow(self, tmp_path, methods, name):
        index = self._index(tmp_path, methods)
        (qualname,) = [q for q in index.flows if q.endswith(name)]
        return index.flows[qualname]

    def test_modes_and_canonical_ids(self, tmp_path):
        flow = self._flow(tmp_path, """\
            def use(self):
                with self.lock.read():
                    pass
                with self.lock.write():
                    pass
                with self._mutex:
                    pass
            """, ".use")
        acquired = [(a.lock_id, a.mode) for a in flow.acquisitions]
        assert acquired == [("Manager.lock", READ),
                            ("Manager.lock", WRITE),
                            ("Manager._mutex", MUTEX)]

    def test_sequential_holds_do_not_overlap(self, tmp_path):
        flow = self._flow(tmp_path, """\
            def use(self):
                with self.lock.read():
                    pass
                with self.lock.write():
                    pass
            """, ".use")
        (write,) = [a for a in flow.acquisitions if a.mode == WRITE]
        assert ("Manager.lock", READ) not in may_pairs(write.state_before)
        assert flow.upgrades == []

    def test_nested_upgrade_is_detected_with_position(self, tmp_path):
        flow = self._flow(tmp_path, """\
            def use(self):
                with self.lock.read():
                    with self.lock.write():
                        pass
            """, ".use")
        ((lock_id, line, col),) = flow.upgrades
        assert lock_id == "Manager.lock"
        assert line == 8 and col > 0

    def test_explicit_acquire_release_balances(self, tmp_path):
        # The PR 3 worker loop shape: balanced explicit acquire/release
        # inside a loop must not accumulate phantom holds.
        flow = self._flow(tmp_path, """\
            def pump(self, jobs):
                for job in jobs:
                    self._mutex.acquire()
                    job()
                    self._mutex.release()
                return self.poll()
            """, ".pump")
        states = [state for call, state in flow.calls
                  if isinstance(call.func, ast.Attribute)
                  and call.func.attr == "poll"]
        assert states and \
            ("Manager._mutex", MUTEX) not in may_pairs(states[0])

    def test_may_entry_propagates_caller_holds(self, tmp_path):
        index = self._index(tmp_path, """\
            def guarded(self):
                with self.lock.read():
                    return self.helper()

            def helper(self):
                return 1
            """)
        (helper,) = [q for q in index.flows if q.endswith(".helper")]
        assert ("Manager.lock", READ) in index.may_entry[helper]
        chain = index.entry_chain(helper, ("Manager.lock", READ))
        assert chain and "guarded" in chain[0]

    def test_must_entry_is_empty_with_an_unlocked_caller(self, tmp_path):
        index = self._index(tmp_path, """\
            def guarded(self):
                with self.lock.write():
                    return self.helper()

            def bare(self):
                return self.helper()

            def helper(self):
                return 1
            """)
        (helper,) = [q for q in index.flows if q.endswith(".helper")]
        # may: the write hold can be inherited; must: the bare caller
        # means nothing is guaranteed.
        assert ("Manager.lock", WRITE) in index.may_entry[helper]
        assert index.must_entry[helper] == frozenset()

    def test_uncalled_method_has_top_must_entry(self, tmp_path):
        index = self._index(tmp_path, """\
            def orphan(self):
                return self
            """)
        (orphan,) = [q for q in index.flows if q.endswith(".orphan")]
        assert index.must_entry[orphan] is None

    def test_opposite_order_chains_form_a_cycle(self, tmp_path):
        index = self._index(tmp_path, """\
            def ab(self):
                with self.lock.write():
                    with self._mutex:
                        pass

            def ba(self):
                with self._mutex:
                    with self.lock.read():
                        pass
            """)
        (cycle,) = index.lock_order_cycles()
        locks = {edge.held for edge in cycle}
        assert locks == {"Manager.lock", "Manager._mutex"}

    def test_consistent_order_is_acyclic_and_in_the_dot(self, tmp_path):
        index = self._index(tmp_path, """\
            def ab(self):
                with self.lock.write():
                    with self._mutex:
                        pass

            def ab_again(self):
                with self.lock.read():
                    with self._mutex:
                        pass
            """)
        assert index.lock_order_cycles() == []
        dot = index.to_dot()
        assert '"Manager.lock" -> "Manager._mutex"' in dot
        assert '"Manager._mutex" -> "Manager.lock"' not in dot
