"""Regression tests for the cache-bookkeeping fixes.

* manual purge advances the consistency cursor (no spurious pass);
* the §6.3 optimal-case checks test validity against the *live* id set,
  not whatever candidate set the caller happened to pass;
* ``BitSet.from_indices`` validates indices before building;
* ``EntryStats.last_used`` recency semantics (admission counts as the
  first use) are what the LRU policy actually consumes.
"""

from __future__ import annotations

import pytest

from repro.api import GCConfig, GraphCacheService
from repro.cache.entry import CacheEntry, QueryType
from repro.cache.manager import NOOP_CONSISTENCY, CacheManager
from repro.cache.replacement import LRUPolicy
from repro.cache.statistics import EntryStats, StatisticsManager
from repro.dataset.store import GraphStore
from repro.graphs.graph import LabeledGraph
from repro.runtime.processors import DiscoveryResult
from repro.runtime.pruner import prune_candidate_set
from repro.util.bitset import BitSet


def two_graph_store() -> GraphStore:
    return GraphStore.from_graphs([
        LabeledGraph.from_edges("CCO", [(0, 1), (1, 2)]),
        LabeledGraph.from_edges("CO", [(0, 1)]),
    ])


class TestManualPurgeCursor:
    @pytest.mark.parametrize("model", ["EVI", "CON"])
    def test_purge_reflects_pending_changes(self, model):
        store = two_graph_store()
        with GraphCacheService(store, GCConfig(model=model)) as service:
            service.execute(LabeledGraph.from_edges("CO", [(0, 1)]))
            service.add_graph(LabeledGraph.from_edges("CC", [(0, 1)]))
            assert service.cache.pending_log_records(store) == 1
            service.purge()
            # The purge counts as having reflected the logged change:
            # nothing is pending, the next consistency pass is a no-op.
            assert service.cache.pending_log_records(store) == 0
            assert service.refresh() is NOOP_CONSISTENCY

    def test_no_spurious_pass_after_manual_purge(self):
        """Pre-fix, the first query after a manual purge re-ran the EVI
        purge on the already-empty cache and reported ``purged=True``,
        polluting the Figure-6 overhead breakdown."""
        store = two_graph_store()
        with GraphCacheService(store, GCConfig(model="EVI")) as service:
            service.execute(LabeledGraph.from_edges("CO", [(0, 1)]))
            service.add_graph(LabeledGraph.from_edges("CC", [(0, 1)]))
            service.purge()
            result = service.execute(
                LabeledGraph.from_edges("CO", [(0, 1)]))
            assert result.metrics.purge_seconds == 0.0
            assert service.monitor.purge_time.total == 0.0

    def test_manager_clear_without_store_keeps_cursor(self):
        """The no-argument form stays available (the EVI protocol purges
        through it and advances the cursor itself)."""
        store = two_graph_store()
        manager = CacheManager()
        manager.admit(LabeledGraph.from_edges("CO", [(0, 1)]),
                      BitSet(), store, 0)
        store.add_graph(LabeledGraph.from_edges("CC", [(0, 1)]))
        manager.clear()
        assert manager.pending_log_records(store) == 1
        manager.clear(store)
        assert manager.pending_log_records(store) == 0

    def test_purge_fires_hook_and_empties_cache(self):
        store = two_graph_store()
        events = []
        with GraphCacheService(store, GCConfig()) as service:
            service.on_purge(events.append)
            service.execute(LabeledGraph.from_edges("CO", [(0, 1)]))
            service.purge()
            assert service.cache.cache_size == 0
            assert service.cache.window_size == 0
        assert len(events) == 1


class TestPrunerLiveIds:
    """§6.3: "fully valid" means valid towards *all* graphs in the
    current dataset — not merely the candidate set Method M considers."""

    def _exact_entry(self, valid_ids, answer_ids, universe=4) -> CacheEntry:
        g = LabeledGraph.from_edges("CO", [(0, 1)])
        return CacheEntry(
            entry_id=0, query=g, query_type=QueryType.SUBGRAPH,
            answer=BitSet.from_indices(answer_ids, size=universe),
            valid=BitSet.from_indices(valid_ids, size=universe),
            created_at=0,
        )

    def test_exact_hit_not_reported_when_validity_lags_live_set(self):
        # Entry is valid on {0, 1} but the live dataset is {0, 1, 2}.
        entry = self._exact_entry(valid_ids=[0, 1], answer_ids=[0])
        discovery = DiscoveryResult(containing=[entry], contained=[entry],
                                    exact=[entry])
        live = BitSet.from_indices([0, 1, 2], size=4)
        narrowed = BitSet.from_indices([0, 1], size=4)
        # A narrowed candidate set must not fool the optimal-case check.
        outcome = prune_candidate_set(QueryType.SUBGRAPH, narrowed,
                                      discovery, 4, live_ids=live)
        assert not outcome.exact_hit

    def test_exact_hit_reported_when_fully_valid_on_live_set(self):
        entry = self._exact_entry(valid_ids=[0, 1, 2], answer_ids=[0])
        discovery = DiscoveryResult(containing=[entry], contained=[entry],
                                    exact=[entry])
        live = BitSet.from_indices([0, 1, 2], size=4)
        outcome = prune_candidate_set(QueryType.SUBGRAPH, live.copy(),
                                      discovery, 4, live_ids=live)
        assert outcome.exact_hit

    def test_empty_shortcut_uses_live_ids(self):
        entry = self._exact_entry(valid_ids=[0, 1], answer_ids=[])
        discovery = DiscoveryResult(contained=[entry])
        live = BitSet.from_indices([0, 1, 2], size=4)
        narrowed = BitSet.from_indices([0, 1], size=4)
        outcome = prune_candidate_set(QueryType.SUBGRAPH, narrowed,
                                      discovery, 4, live_ids=live)
        assert not outcome.empty_shortcut
        # Without live_ids the check falls back to cs_m (exact for SI
        # methods, whose CS_M is the whole live dataset) — test-locking
        # the documented default.
        outcome = prune_candidate_set(QueryType.SUBGRAPH, narrowed,
                                      discovery, 4)
        assert outcome.empty_shortcut


class TestBitSetValidation:
    def test_oversized_index_raises_even_when_not_last(self):
        with pytest.raises(ValueError, match="does not fit"):
            BitSet.from_indices([5, 1], size=3)

    def test_generator_input_validated(self):
        with pytest.raises(ValueError, match="does not fit"):
            BitSet.from_indices(iter([0, 7]), size=4)

    def test_negative_still_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            BitSet.from_indices([2, -1], size=4)

    def test_boundary_index_accepted(self):
        b = BitSet.from_indices([2], size=3)
        assert b.get(2) and b.size == 3


class TestGraphStoreFeaturesMemo:
    def test_memo_returns_same_instance_until_mutation(self):
        store = two_graph_store()
        first = store.features(0)
        assert first.num_vertices == 3
        assert store.features(0) is first  # memoized
        store.add_edge(0, 0, 2)  # UA bumps the graph's version
        refreshed = store.features(0)
        assert refreshed is not first
        assert refreshed.num_edges == 3

    def test_edge_removal_invalidates(self):
        store = two_graph_store()
        before = store.features(0)
        store.remove_edge(0, 1, 2)
        assert store.features(0).num_edges == before.num_edges - 1

    def test_delete_drops_memo_and_raises(self):
        store = two_graph_store()
        store.features(1)
        store.delete_graph(1)
        with pytest.raises(KeyError):
            store.features(1)

    def test_matches_direct_computation(self):
        from repro.graphs.features import GraphFeatures

        store = two_graph_store()
        assert store.features(1) == GraphFeatures.of(store.get(1))


class TestLRURecencySemantics:
    def test_register_seeds_last_used_with_created_at(self):
        stats = StatisticsManager()
        stats.register(1, created_at=17)
        assert stats.get(1).last_used == 17
        assert stats.get(1).created_at == 17

    def test_bare_entry_stats_keeps_never_used_sentinel(self):
        assert EntryStats().last_used == -1

    def test_zero_credit_does_not_touch_recency(self):
        stats = StatisticsManager()
        stats.register(1, created_at=3)
        stats.credit(1, tests_saved=0, cost_saved=0.0, query_index=9)
        assert stats.get(1).last_used == 3
        assert stats.get(1).hits == 0

    def test_contribution_refreshes_recency(self):
        stats = StatisticsManager()
        stats.register(1, created_at=3)
        stats.credit(1, tests_saved=2, cost_saved=1.0, query_index=9)
        assert stats.get(1).last_used == 9
        assert stats.get(1).hits == 1

    def test_lru_prefers_evicting_stale_over_fresh_admission(self):
        """Admission-as-first-use: a brand-new entry outranks an old
        entry that never contributed since its own admission."""
        stats = StatisticsManager()
        stats.register(0, created_at=0)   # old, never used again
        stats.register(1, created_at=50)  # freshly admitted
        g = LabeledGraph.from_edges("CO", [(0, 1)])
        entries = [
            CacheEntry(0, g, QueryType.SUBGRAPH, BitSet(), BitSet(), 0),
            CacheEntry(1, g, QueryType.SUBGRAPH, BitSet(), BitSet(), 50),
        ]
        victims = LRUPolicy().select_victims(entries, stats, capacity=1)
        assert [v.entry_id for v in victims] == [0]


class TestEmptyEventSuppression:
    """Hooks never fire with empty id tuples: an eviction-free window
    promotion emits no EVICTION, a purge of an already-empty cache emits
    no PURGE (regression — hooks used to see a non-event on every
    promotion and had to filter empty tuples themselves)."""

    @staticmethod
    def service(**overrides):
        store = two_graph_store()
        config = GCConfig(model="CON", **overrides)
        return GraphCacheService(store, config)

    @staticmethod
    def distinct_queries(n):
        # Paths of growing length: distinct graphs, all with answers.
        return [
            LabeledGraph.from_edges("C" * (k + 2),
                                    [(i, i + 1) for i in range(k + 1)])
            for k in range(n)
        ]

    def test_promotion_under_capacity_fires_no_eviction(self):
        with self.service(cache_capacity=100, window_capacity=2) as svc:
            events = []
            svc.on_promotion(lambda e: events.append(e))
            svc.on_eviction(lambda e: events.append(e))
            for q in self.distinct_queries(2):
                svc.execute(q)
            kinds = [e.kind.value for e in events]
            assert kinds == ["promotion"], (
                f"expected exactly one promotion and no eviction, "
                f"got {kinds}"
            )
            assert len(events[0].entry_ids) == 2

    def test_purge_of_empty_cache_emits_nothing(self):
        with self.service() as svc:
            purges = []
            svc.on_purge(lambda e: purges.append(e))
            svc.purge()                      # cache is empty: non-event
            assert purges == []
            svc.execute(LabeledGraph.from_edges("CO", [(0, 1)]))
            svc.purge()                      # real purge: one event
            svc.purge()                      # empty again: still one
            assert len(purges) == 1
            assert purges[0].entry_ids != ()

    def test_no_event_ever_carries_empty_ids(self):
        with self.service(cache_capacity=2, window_capacity=2) as svc:
            events = []
            for register in (svc.on_admission, svc.on_promotion,
                             svc.on_eviction, svc.on_purge):
                register(lambda e: events.append(e))
            for q in self.distinct_queries(7):
                svc.execute(q)
            svc.purge()
            assert events, "trace produced no events; test is vacuous"
            assert all(e.entry_ids for e in events)


class TestHDRegimeTallies:
    """HybridPolicy's pin/pinc round counters reset on purge and are
    surfaced through the service summary (and therefore RunResult)."""

    @staticmethod
    def churn(service, n):
        for k in range(n):
            service.execute(LabeledGraph.from_edges(
                "C" * (k + 2), [(i, i + 1) for i in range(k + 1)]))

    def test_rounds_reset_on_purge(self):
        store = two_graph_store()
        config = GCConfig(model="CON", cache_capacity=1, window_capacity=1)
        with GraphCacheService(store, config) as svc:
            self.churn(svc, 3)
            policy = svc.cache.policy
            assert policy.pin_rounds + policy.pinc_rounds > 0
            svc.purge()
            assert policy.pin_rounds == 0
            assert policy.pinc_rounds == 0

    def test_summary_surfaces_hd_rounds(self):
        store = two_graph_store()
        config = GCConfig(model="CON", cache_capacity=1, window_capacity=1)
        with GraphCacheService(store, config) as svc:
            self.churn(svc, 3)
            summary = svc.summary()
            assert summary["hd_pin_rounds"] == svc.cache.policy.pin_rounds
            assert summary["hd_pinc_rounds"] == svc.cache.policy.pinc_rounds
            assert summary["hd_pin_rounds"] + summary["hd_pinc_rounds"] > 0

    def test_non_hd_policies_carry_no_regime_keys(self):
        store = two_graph_store()
        with GraphCacheService(store, GCConfig(model="CON",
                                               policy="pin")) as svc:
            svc.execute(LabeledGraph.from_edges("CO", [(0, 1)]))
            summary = svc.summary()
            assert "hd_pin_rounds" not in summary
            assert "hd_pinc_rounds" not in summary
