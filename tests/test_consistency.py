"""End-to-end consistency property tests — the paper's Theorems 3 and 6.

GC+ must return *exactly* the ground-truth answer set for every query —
no false positives (Lemmas 1, 4), no false negatives (Lemmas 2, 5) —
under arbitrary interleavings of queries and dataset changes, for both
cache models and both query semantics.  Hypothesis drives randomized
interleavings; a failure here would be a soundness bug in the validity
tracking or the pruning formulas.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.entry import QueryType
from repro.cache.models import CacheModel
from repro.dataset.store import GraphStore
from repro.graphs.generators import random_labeled_graph
from repro.graphs.graph import LabeledGraph
from repro.matching.vf2plus import VF2PlusMatcher
from repro.runtime.engine import GraphCachePlus
from tests.conftest import brute_force_answer

ALPHABET = "abc"


def random_change(store: GraphStore, pool: list[LabeledGraph],
                  rng: random.Random) -> None:
    """One random ADD/DEL/UA/UR against the live store (best effort)."""
    choice = rng.randrange(4)
    live = sorted(store.ids())
    if choice == 0:
        store.add_graph(rng.choice(pool))
    elif choice == 1 and live:
        store.delete_graph(rng.choice(live))
    elif choice == 2 and live:
        gid = rng.choice(live)
        non_edges = list(store.get(gid).non_edges())
        if non_edges:
            store.add_edge(gid, *rng.choice(non_edges))
    elif live:
        gid = rng.choice(live)
        edges = list(store.get(gid).edges())
        if edges:
            store.remove_edge(gid, *rng.choice(edges))


def run_interleaving(seed: int, model: CacheModel, query_type: QueryType,
                     steps: int = 60, change_probability: float = 0.3,
                     cache_capacity: int = 5, window_capacity: int = 2,
                     policy: str = "hd") -> None:
    rng = random.Random(seed)
    pool = [random_labeled_graph(rng.randint(2, 7), 0.4, ALPHABET, rng)
            for _ in range(10)]
    store = GraphStore.from_graphs(pool)
    engine = GraphCachePlus(
        store, VF2PlusMatcher(), model=model, query_type=query_type,
        cache_capacity=cache_capacity, window_capacity=window_capacity,
        policy=policy,
    )
    for _ in range(steps):
        if rng.random() < change_probability:
            random_change(store, pool, rng)
        else:
            query = random_labeled_graph(rng.randint(1, 5), 0.5,
                                         ALPHABET, rng)
            got = engine.execute(query).answer_ids
            want = brute_force_answer(store, query, query_type)
            assert got == frozenset(want), (
                f"seed={seed} model={model} type={query_type}: "
                f"got {sorted(got)}, want {sorted(want)}"
            )


@pytest.mark.parametrize("model", [CacheModel.CON, CacheModel.EVI])
@pytest.mark.parametrize(
    "query_type", [QueryType.SUBGRAPH, QueryType.SUPERGRAPH]
)
@settings(max_examples=12, deadline=None)
@given(seed=st.integers(0, 2**32 - 1))
def test_answers_always_match_ground_truth(model, query_type, seed):
    run_interleaving(seed, model, query_type)


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 2**32 - 1),
       policy=st.sampled_from(["lru", "lfu", "pin", "pinc", "hd"]))
def test_correct_under_every_replacement_policy(seed, policy):
    run_interleaving(seed, CacheModel.CON, QueryType.SUBGRAPH,
                     steps=40, policy=policy)


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 2**32 - 1))
def test_correct_with_tiny_cache(seed):
    """Heavy eviction pressure must never affect answers."""
    run_interleaving(seed, CacheModel.CON, QueryType.SUBGRAPH,
                     steps=40, cache_capacity=1, window_capacity=1)


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(0, 2**32 - 1))
def test_correct_under_pure_churn(seed):
    """Change on almost every step (worst case for CON validity)."""
    run_interleaving(seed, CacheModel.CON, QueryType.SUBGRAPH,
                     steps=50, change_probability=0.7)


@pytest.mark.parametrize("model", [CacheModel.CON, CacheModel.EVI])
def test_long_deterministic_interleaving(model):
    """One long fixed-seed soak per model (stable regression anchor)."""
    run_interleaving(20170321, model, QueryType.SUBGRAPH, steps=150,
                     change_probability=0.25)


def test_models_agree_with_each_other():
    """CON and EVI must produce identical answers on the same stream."""
    seed = 99
    for query_type in (QueryType.SUBGRAPH, QueryType.SUPERGRAPH):
        answers = {}
        for model in (CacheModel.CON, CacheModel.EVI):
            rng = random.Random(seed)
            pool = [random_labeled_graph(rng.randint(2, 6), 0.4,
                                         ALPHABET, rng)
                    for _ in range(8)]
            store = GraphStore.from_graphs(pool)
            engine = GraphCachePlus(store, VF2PlusMatcher(), model=model,
                                    query_type=query_type,
                                    cache_capacity=4, window_capacity=2)
            collected = []
            for _ in range(60):
                if rng.random() < 0.3:
                    random_change(store, pool, rng)
                else:
                    q = random_labeled_graph(rng.randint(1, 4), 0.5,
                                             ALPHABET, rng)
                    collected.append(engine.execute(q).answer_ids)
            answers[model] = collected
        assert answers[CacheModel.CON] == answers[CacheModel.EVI]


def test_con_validity_is_sound_but_not_complete():
    """CGvalid may under-approximate (conservative) but never
    over-approximate: every valid-marked positive must really hold."""
    from repro.matching.vf2 import VF2Matcher

    rng = random.Random(4242)
    pool = [random_labeled_graph(rng.randint(2, 6), 0.4, ALPHABET, rng)
            for _ in range(8)]
    store = GraphStore.from_graphs(pool)
    engine = GraphCachePlus(store, VF2PlusMatcher(),
                            model=CacheModel.CON, cache_capacity=6,
                            window_capacity=2)
    oracle = VF2Matcher()
    for step in range(80):
        if rng.random() < 0.4:
            random_change(store, pool, rng)
        else:
            engine.execute(
                random_labeled_graph(rng.randint(1, 4), 0.5, ALPHABET, rng)
            )
        engine.cache.ensure_consistency(store)
        for entry in engine.cache.all_entries():
            for gid in entry.valid_answer():
                assert gid in store, (
                    f"step {step}: valid answer bit for dead graph {gid}"
                )
                assert oracle.is_subgraph_isomorphic(
                    entry.query, store.get(gid)
                ), f"step {step}: stale positive marked valid (graph {gid})"
