"""Randomized cross-config equivalence sweep: GC+ ≡ direct Method M.

The paper's §6 correctness claim — the cache never changes an answer,
only the work to produce it — has so far been spot-checked per
component.  This sweep asserts it *end to end* across the whole config
grid on seeded random workloads with interleaved dataset mutations:

* workload families: Type A (random-walk extracts) and Type B
  (answer-pool mixes with no-answer shares);
* all three Method M matchers (vf2, vf2+, graphql);
* both cache models (CON, EVI);
* Mverifier (workers, backend) ∈ {(1, thread), (4, thread),
  (4, process)} — both the thread-chunked path and the replica-holding
  process pool must be bit-identical to the sequential reference.

Every cell replays the identical (query, mutation) trace against a
fresh dataset replica; the oracle is a bare :class:`MethodMRunner`
(no cache, no index, no pruning) over its own replica.  Answers must
match **per stream index**, not merely in aggregate.
"""

from __future__ import annotations

import pytest

from repro.api import GCConfig, GraphCacheService
from repro.bench.harness import MATCHER_NAMES
from repro.dataset.change_plan import ChangePlan
from repro.dataset.store import GraphStore
from repro.datasets.aids import generate_aids_like
from repro.matching import make_matcher
from repro.runtime.method_m import MethodMRunner
from repro.workloads.typea import generate_type_a
from repro.workloads.typeb import TypeBConfig, generate_type_b

NUM_GRAPHS = 30
NUM_QUERIES = 14
SEED = 20170307  # the paper's venue date; any fixed seed works


@pytest.fixture(scope="module")
def dataset():
    return generate_aids_like(
        num_graphs=NUM_GRAPHS, mean_vertices=7.0, std_vertices=2.5,
        max_vertices=11, seed=SEED,
    )


@pytest.fixture(scope="module")
def workloads(dataset):
    type_a = generate_type_a(dataset, NUM_QUERIES, "ZZ", seed=SEED + 1)
    type_b = generate_type_b(dataset, TypeBConfig(
        num_queries=NUM_QUERIES, no_answer_probability=0.5,
        answer_pool_size=8, no_answer_pool_size=4, seed=SEED + 2,
    ))
    return {"typeA": [q.graph for q in type_a.queries],
            "typeB": [q.graph for q in type_b.queries]}


def _plan(dataset) -> ChangePlan:
    return ChangePlan.generate(dataset, num_queries=NUM_QUERIES,
                               num_batches=3, ops_per_batch=4,
                               seed=SEED + 3)


def _oracle_answers(dataset, queries) -> list[frozenset[int]]:
    """Bare Method M over a fresh replica with the same trace."""
    store = GraphStore.from_graphs(dataset)
    plan = _plan(dataset)
    runner = MethodMRunner(store, make_matcher("vf2+"))
    answers = []
    try:
        for index, query in enumerate(queries):
            plan.apply_due(store, index)
            answers.append(frozenset(runner.execute(query).answer))
    finally:
        runner.close()
    return answers


@pytest.fixture(scope="module")
def oracle(dataset, workloads):
    return {name: _oracle_answers(dataset, queries)
            for name, queries in workloads.items()}


@pytest.mark.parametrize("workload_name", ["typeA", "typeB"])
@pytest.mark.parametrize("matcher", MATCHER_NAMES)
@pytest.mark.parametrize("model", ["CON", "EVI"])
@pytest.mark.parametrize("workers,worker_backend",
                         [(1, "thread"), (4, "thread"), (4, "process")])
def test_gc_answers_equal_direct_matcher(dataset, workloads, oracle,
                                         workload_name, matcher, model,
                                         workers, worker_backend):
    queries = workloads[workload_name]
    store = GraphStore.from_graphs(dataset)
    plan = _plan(dataset)
    service = GraphCacheService(store, GCConfig(
        model=model, matcher=matcher, workers=workers,
        worker_backend=worker_backend,
        cache_capacity=6, window_capacity=3,
    ))
    try:
        for index, query in enumerate(queries):
            service.apply(plan, index)
            answer = frozenset(service.execute(query).answer)
            assert answer == oracle[workload_name][index], (
                f"answer drift at query {index} for "
                f"({workload_name}, {matcher}, {model}, "
                f"workers={workers}, backend={worker_backend})"
            )
    finally:
        service.close()
