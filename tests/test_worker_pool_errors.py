"""WorkerPool/worker_main error paths — the protocol edges GC310
reasons about statically, exercised for real.

The worker loop's promises under fire:

* an unknown command gets an ``("err", …)`` reply, never a crash;
* a failing delta **poisons** the replica: later verifies report the
  stored error (instead of silently diverging) until a re-seed;
* a worker dying mid-conversation surfaces as a :class:`WorkerError`
  naming the worker and its exit code — not a hang on a dead pipe.

The loop itself is start-method agnostic, so the reply-protocol tests
drive :func:`worker_main` in a plain thread over a multiprocessing pipe
(no spawn cost); the death tests use a real spawned pool.
"""

from __future__ import annotations

import multiprocessing
import random
import threading

import pytest

from repro.dataset.store import GraphStore
from repro.graphs import io as graph_io
from repro.graphs.generators import random_labeled_graph
from repro.persist import encode_store
from repro.runtime.worker_pool import WorkerError, WorkerPool, worker_main

RECV_TIMEOUT = 10.0     # any reply slower than this is "a hang"


def _population(count: int = 4) -> GraphStore:
    rng = random.Random(5)
    graphs = [random_labeled_graph(5, 0.4, ["A", "B"], rng)
              for _ in range(count)]
    return GraphStore.from_graphs(graphs)


def _query_text() -> str:
    return graph_io.dumps([(0, random_labeled_graph(2, 1.0, ["A"],
                                                    random.Random(9)))])


def _recv(conn):
    assert conn.poll(RECV_TIMEOUT), "worker sent no reply (hang?)"
    return conn.recv()


# ----------------------------------------------------------------------
# Reply protocol: worker_main in a thread
# ----------------------------------------------------------------------
@pytest.fixture()
def worker_conn():
    parent, child = multiprocessing.Pipe(duplex=True)
    thread = threading.Thread(target=worker_main, args=(child,),
                              daemon=True)
    thread.start()
    yield parent
    try:
        parent.send(("close",))
    except (BrokenPipeError, OSError):
        pass
    thread.join(timeout=RECV_TIMEOUT)
    assert not thread.is_alive(), "worker loop failed to exit on close"
    parent.close()


class TestReplyProtocol:
    def _seed(self, conn, store) -> None:
        conn.send(("seed", "vf2", encode_store(store)))
        assert _recv(conn) == ("ok",)

    def test_unknown_command_gets_err_reply(self, worker_conn):
        worker_conn.send(("frobnicate",))
        tag, detail = _recv(worker_conn)
        assert tag == "err"
        assert "unknown command 'frobnicate'" in detail

    def test_verify_before_seed_is_err(self, worker_conn):
        worker_conn.send(("verify", _query_text(), [0], 4, True))
        assert _recv(worker_conn) == ("err", "verify before seed")

    def test_bad_delta_poisons_until_reseed(self, worker_conn):
        store = _population()
        self._seed(worker_conn, store)

        # A delta for a graph the replica doesn't hold fails to apply;
        # there is no ack, the failure must show on the NEXT verify.
        worker_conn.send(("delta", [("del", 999)]))
        worker_conn.send(("verify", _query_text(), [0, 1], 4, True))
        tag, detail = _recv(worker_conn)
        assert tag == "err"
        assert detail.startswith("replica poisoned:")
        assert "KeyError" in detail

        # Poison sticks: further deltas are skipped (not crashed on)
        # and further verifies keep refusing.
        worker_conn.send(("delta", [("del", 0)]))
        worker_conn.send(("verify", _query_text(), [0], 4, True))
        tag, detail = _recv(worker_conn)
        assert tag == "err" and detail.startswith("replica poisoned:")

        # Re-seeding is the documented recovery: poison clears and
        # verify answers again.
        self._seed(worker_conn, store)
        worker_conn.send(("verify", _query_text(), [0, 1], 4, True))
        reply = _recv(worker_conn)
        assert reply[0] == "result" and reply[2] == 2   # tests ran

    def test_unknown_delta_op_poisons_with_the_op_name(self, worker_conn):
        self._seed(worker_conn, _population())
        worker_conn.send(("delta", [("frob", 1)]))
        worker_conn.send(("verify", _query_text(), [0], 4, True))
        tag, detail = _recv(worker_conn)
        assert tag == "err"
        assert "unknown delta op 'frob'" in detail


# ----------------------------------------------------------------------
# Parent-side failure surfacing: a real spawned pool
# ----------------------------------------------------------------------
class TestPoolFailures:
    def test_poisoned_replica_fails_verify_with_workererror(self):
        pool = WorkerPool(1, "vf2")
        try:
            pool.start(encode_store(_population()))
            pool.broadcast_delta([("del", 999)])
            with pytest.raises(WorkerError,
                               match="replica poisoned.*KeyError"):
                pool.verify(_query_text(), [[0, 1]], 4, True)
        finally:
            pool.close()

    def test_seed_failure_names_the_worker(self):
        pool = WorkerPool(1, "no-such-matcher")
        try:
            with pytest.raises(WorkerError,
                               match="worker 0 failed to seed"):
                pool.start(encode_store(_population()))
        finally:
            pool.close()

    def test_worker_death_mid_recv_is_a_clear_error_not_a_hang(self):
        pool = WorkerPool(1, "vf2")
        try:
            pool.start(encode_store(_population()))
            proc = pool._procs[0]
            proc.terminate()
            proc.join(timeout=RECV_TIMEOUT)
            with pytest.raises(WorkerError,
                               match=r"worker 0 .* died: exitcode="):
                pool._recv(0)
        finally:
            pool.close()

    def test_close_is_idempotent_after_worker_death(self):
        pool = WorkerPool(1, "vf2")
        pool.start(encode_store(_population()))
        pool._procs[0].terminate()
        pool._procs[0].join(timeout=RECV_TIMEOUT)
        pool.close()
        pool.close()    # second close must be a no-op
        assert pool._procs == [] and pool._conns == []
