"""GraphCachePlus end-to-end behaviour on small, fully understood inputs."""

from __future__ import annotations

import pytest

from repro.cache.entry import QueryType
from repro.cache.models import CacheModel
from repro.dataset.store import GraphStore
from repro.graphs.graph import LabeledGraph
from repro.matching.vf2plus import VF2PlusMatcher
from repro.runtime.engine import GraphCachePlus
from tests.conftest import brute_force_answer


def path(labels: str) -> LabeledGraph:
    return LabeledGraph.from_edges(
        list(labels), [(i, i + 1) for i in range(len(labels) - 1)]
    )


@pytest.fixture
def store() -> GraphStore:
    return GraphStore.from_graphs([
        path("CCO"),
        path("CCCO"),
        path("CO"),
        LabeledGraph.from_edges("CCO", [(0, 1), (1, 2), (0, 2)]),
        path("NNN"),
    ])


@pytest.fixture
def engine(store) -> GraphCachePlus:
    return GraphCachePlus(store, VF2PlusMatcher(), window_capacity=3,
                          cache_capacity=5)


class TestBasicExecution:
    def test_answers_match_ground_truth(self, engine, store):
        for q in (path("CO"), path("CC"), path("N"), path("XX")):
            result = engine.execute(q)
            assert result.answer_ids == frozenset(
                brute_force_answer(store, q, QueryType.SUBGRAPH)
            )

    def test_first_query_tests_whole_dataset(self, engine):
        result = engine.execute(path("CO"))
        assert result.metrics.method_tests == 5
        assert result.metrics.candidate_size == 5
        assert result.metrics.tests_saved == 0

    def test_repeat_query_is_test_free(self, engine):
        first = engine.execute(path("CO"))
        second = engine.execute(path("CO"))
        assert second.answer_ids == first.answer_ids
        assert second.metrics.method_tests == 0
        assert second.metrics.exact_hits == 1
        assert second.metrics.exact_hit_valid
        assert second.metrics.tests_saved == 5

    def test_isomorphic_not_identical_query_is_test_free(self, engine):
        engine.execute(path("CO"))
        flipped = path("OC")  # isomorphic to CO
        result = engine.execute(flipped)
        assert result.metrics.method_tests == 0
        assert sorted(result.answer_ids) == sorted(
            engine.execute(path("CO")).answer_ids
        )

    def test_subgraph_hit_donates(self, engine):
        engine.execute(path("CCO"))   # cached: answers {0, 1, 3}
        result = engine.execute(path("CO"))  # CO ⊆ CCO
        assert result.metrics.containing_hits == 1
        # donated graphs need no test: only the rest of the dataset does.
        assert result.metrics.method_tests == 2
        assert sorted(result.answer_ids) == [0, 1, 2, 3]

    def test_supergraph_hit_filters(self, engine):
        engine.execute(path("CC"))    # cached: answers {0, 1, 3}
        result = engine.execute(path("CCC"))  # CC ⊆ CCC
        assert result.metrics.contained_hits == 1
        # graphs not containing CC cannot contain CCC: G2, G4 skipped.
        assert result.metrics.method_tests == 3
        assert sorted(result.answer_ids) == [1]

    def test_empty_answer_shortcut(self, engine):
        none = path("SS")
        first = engine.execute(none)
        assert first.answer_ids == frozenset()
        result = engine.execute(path("SSS"))  # SS ⊆ SSS
        assert result.metrics.empty_shortcut
        assert result.metrics.method_tests == 0
        assert result.answer_ids == frozenset()

    def test_metrics_time_components(self, engine):
        m = engine.execute(path("CO")).metrics
        assert m.query_seconds == pytest.approx(
            m.discovery_seconds + m.prune_seconds + m.verify_seconds
        )
        assert m.overhead_seconds == pytest.approx(
            m.analyze_seconds + m.validate_seconds + m.admission_seconds
        )

    def test_monitor_aggregates(self, engine):
        engine.execute(path("CO"))
        engine.execute(path("CO"))
        s = engine.monitor.summary()
        assert s["queries"] == 2
        assert s["zero_test_queries"] == 1
        assert s["total_method_tests"] == 5

    def test_repr(self, engine):
        engine.execute(path("CO"))
        assert "queries=1" in repr(engine)


class TestCachingDisabled:
    def test_no_admission(self, store):
        engine = GraphCachePlus(store, VF2PlusMatcher(),
                                caching_enabled=False)
        engine.execute(path("CO"))
        result = engine.execute(path("CO"))
        assert result.metrics.method_tests == 5
        assert engine.cache.cache_size == 0
        assert engine.cache.window_size == 0


class TestDynamicBehaviour:
    def test_con_serves_correct_answers_after_ur(self, store):
        engine = GraphCachePlus(store, VF2PlusMatcher(),
                                model=CacheModel.CON)
        engine.execute(path("CCO"))
        store.remove_edge(0, 1, 2)  # G0 loses C-O edge
        result = engine.execute(path("CCO"))
        assert result.answer_ids == frozenset(
            brute_force_answer(store, path("CCO"), QueryType.SUBGRAPH)
        )
        # not an exact-hit-free query: G0's validity faded.
        assert result.metrics.method_tests >= 1

    def test_ur_on_non_answer_graph_keeps_full_validity(self, store):
        """Algorithm 2's UR-exclusive case: g ⊄ G4 survives edge removal,
        so the cached entry stays fully valid and the repeat is free."""
        engine = GraphCachePlus(store, VF2PlusMatcher(),
                                model=CacheModel.CON)
        engine.execute(path("CO"))
        store.remove_edge(4, 0, 1)  # UR on the NNN graph (not an answer)
        result = engine.execute(path("CO"))
        assert result.metrics.method_tests == 0
        assert sorted(result.answer_ids) == [0, 1, 2, 3]

    def test_ua_on_non_answer_graph_invalidates_it_only(self, store):
        engine = GraphCachePlus(store, VF2PlusMatcher(),
                                model=CacheModel.CON)
        engine.execute(path("CO"))
        store.add_edge(4, 0, 2)  # UA on the NNN graph (not an answer)
        result = engine.execute(path("CO"))
        # only the UA-touched graph needs re-testing.
        assert result.metrics.method_tests == 1
        assert sorted(result.answer_ids) == [0, 1, 2, 3]

    def test_evi_restarts_after_change(self, store):
        engine = GraphCachePlus(store, VF2PlusMatcher(),
                                model=CacheModel.EVI)
        engine.execute(path("CO"))
        store.add_graph(path("CO"))
        result = engine.execute(path("CO"))
        assert result.metrics.method_tests == 6  # cold cache, 6 live graphs
        assert sorted(result.answer_ids) == [0, 1, 2, 3, 5]

    def test_ua_only_preserves_positive_answers(self, store):
        engine = GraphCachePlus(store, VF2PlusMatcher(),
                                model=CacheModel.CON)
        engine.execute(path("CO"))  # answers {0, 1, 2, 3}
        store.add_edge(0, 0, 2)     # UA on an answer graph
        result = engine.execute(path("CO"))
        # positive relation survives UA: zero tests via exact-match...
        # except the UA-touched graph is still valid (answer bit set and
        # UA-exclusive), so the entry stays fully valid.
        assert result.metrics.method_tests == 0
        assert sorted(result.answer_ids) == [0, 1, 2, 3]

    def test_add_makes_exact_hit_partial(self, store):
        engine = GraphCachePlus(store, VF2PlusMatcher(),
                                model=CacheModel.CON)
        engine.execute(path("CO"))
        new_id = store.add_graph(path("OC"))
        result = engine.execute(path("CO"))
        # only the new graph needs testing.
        assert result.metrics.method_tests == 1
        assert new_id in result.answer_ids

    def test_supergraph_query_type(self, store):
        engine = GraphCachePlus(store, VF2PlusMatcher(),
                                query_type=QueryType.SUPERGRAPH)
        q = path("CCCO")
        result = engine.execute(q)
        assert result.answer_ids == frozenset(
            brute_force_answer(store, q, QueryType.SUPERGRAPH)
        )
        repeat = engine.execute(q)
        assert repeat.metrics.method_tests == 0
        assert repeat.answer_ids == result.answer_ids
