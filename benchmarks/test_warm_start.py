"""Warm-start benchmark: snapshot-restored cache vs cold cache.

The serving scenario persistence exists for: a process that served a
Zipf-repeating Type B stream is restarted (deploy, crash, rebalance) and
must serve the *rest* of the stream.  A cold restart relearns the
popular queries from nothing; a warm start restores the snapshot and
keeps hitting immediately.

Measured into ``benchmarks/results/BENCH_warmstart.json``:

* **correctness** — the warm tail's answers are bit-identical to the
  cold tail's (a snapshot may never change an answer);
* **hit rate over the first window-capacity queries** of the tail —
  the acceptance criterion: warm strictly above cold;
* **time-to-first-hit** — stream index and wall-clock milliseconds
  until the first containment hit.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.api import GCConfig, GraphCacheService
from repro.dataset.store import GraphStore
from repro.datasets.aids import generate_aids_like
from repro.workloads.typeb import TypeBConfig, generate_type_b

RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_warmstart.json"

NUM_QUERIES = 300
WARM_PREFIX = 200          # queries served before the simulated restart
CONFIG = GCConfig(model="CON", matcher="vf2+")  # paper capacities 100/20

WORKLOAD = "20%"


def _serve_tail(graphs, tail, snapshot_path):
    """Serve the post-restart tail; ``snapshot_path=None`` is the cold
    restart, a path warm-starts from it.  Returns per-query rows."""
    store = GraphStore.from_graphs(graphs)
    rows = []
    with GraphCacheService(store, CONFIG) as service:
        if snapshot_path is not None:
            service.load(snapshot_path)
        start = time.perf_counter()
        for query in tail:
            result = service.execute(query)
            m = result.metrics
            rows.append({
                "answer": frozenset(result.answer),
                "hit": (m.containing_hits + m.contained_hits) > 0,
                "elapsed_s": time.perf_counter() - start,
                "method_tests": m.method_tests,
                "query_ms": m.query_seconds * 1000.0,
            })
    return rows


def _report(rows, first_n):
    hits_first = sum(r["hit"] for r in rows[:first_n])
    first_hit = next((i for i, r in enumerate(rows) if r["hit"]), None)
    return {
        "queries": len(rows),
        f"hit_rate_first_{first_n}": hits_first / first_n,
        "hit_rate_total": sum(r["hit"] for r in rows) / len(rows),
        "time_to_first_hit_index": first_hit,
        "time_to_first_hit_ms": (rows[first_hit]["elapsed_s"] * 1000.0
                                 if first_hit is not None else None),
        "total_method_tests": sum(r["method_tests"] for r in rows),
        "avg_query_ms": sum(r["query_ms"] for r in rows) / len(rows),
    }


def test_warm_start_beats_cold(report_table, tmp_path):
    graphs = generate_aids_like(num_graphs=150, mean_vertices=8.0,
                                std_vertices=3.0, max_vertices=14,
                                seed=2017)
    share = int(WORKLOAD.rstrip("%")) / 100.0
    workload = generate_type_b(graphs, TypeBConfig(
        num_queries=NUM_QUERIES, no_answer_probability=share,
        answer_pool_size=60, no_answer_pool_size=15, seed=424242,
    ))
    queries = [q.graph for q in workload.queries]
    tail = queries[WARM_PREFIX:]
    window = CONFIG.window_capacity

    # Phase 1: the pre-restart process serves the prefix and snapshots.
    snapshot_path = tmp_path / "warm.snap.jsonl"
    store = GraphStore.from_graphs(graphs)
    with GraphCacheService(store, CONFIG) as before_restart:
        for query in queries[:WARM_PREFIX]:
            before_restart.execute(query)
        before_restart.save(snapshot_path)

    # Phase 2: cold restart vs warm restart over the identical tail.
    cold = _serve_tail(graphs, tail, None)
    warm = _serve_tail(graphs, tail, snapshot_path)

    assert [r["answer"] for r in cold] == [r["answer"] for r in warm], (
        "warm-started answers diverged from cold answers"
    )

    cold_report = _report(cold, window)
    warm_report = _report(warm, window)
    payload = {
        "workload": f"typeB-{WORKLOAD}",
        "queries": NUM_QUERIES,
        "warm_prefix": WARM_PREFIX,
        "window_capacity": window,
        "capacities": {"cache": CONFIG.cache_capacity, "window": window},
        "cold": cold_report,
        "warm": warm_report,
    }
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(payload, indent=2, allow_nan=False) + "\n",
                            encoding="utf-8")

    from repro.bench.reporting import render_table
    key = f"hit_rate_first_{window}"
    report_table(
        "BENCH_warmstart",
        render_table(
            f"warm vs cold restart ({payload['workload']}, "
            f"{len(tail)}-query tail after {WARM_PREFIX} warm-up)",
            [{"restart": "cold", **cold_report},
             {"restart": "warm", **warm_report}],
        ),
    )

    assert warm_report[key] > cold_report[key], (
        f"warm-start hit rate over the first {window} queries "
        f"({warm_report[key]:.2f}) is not strictly above cold-start "
        f"({cold_report[key]:.2f})"
    )
