"""Sustained-load benchmark for the HTTP serving sidecar.

Boots a :class:`~repro.serve.server.CacheServer` over an AIDS-like
dataset and drives it with the open-loop generator at a fixed offered
QPS with the paper's Zipf(α=1.4) query mix plus a mutation fraction —
the serving shape GC+ is built for: a skewed query stream interleaved
with dataset updates that force consistency maintenance.

Measured into ``benchmarks/results/BENCH_serve.json``:

* **sustained (achieved) QPS** vs offered — open-loop pacing means a
  saturated server shows up as achieved < offered, not as hidden
  queueing delay (no coordinated omission);
* **latency** — p50/p95/p99/max per-request wall clock, in ms;
* **hit rate** — per-response cache-hit accounting over this run's
  queries only;
* **drain** — the graceful-shutdown receipt: in-flight drained and a
  snapshot persisted.

Client and server share one Python process (and GIL), so achieved QPS
here is a *floor* on the sidecar's real capacity, not a ceiling.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.api import GCConfig, GraphCacheService
from repro.dataset.store import GraphStore
from repro.datasets.aids import generate_aids_like
from repro.serve.loadgen import LoadgenConfig, run_loadgen
from repro.serve.server import CacheServer
from repro.workloads.typeb import TypeBConfig, generate_type_b

RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_serve.json"

OFFERED_QPS = 150.0
DURATION_SECONDS = 4.0
MUTATION_FRACTION = 0.05
WORKERS = 4


def test_sustained_load(report_table, tmp_path):
    graphs = generate_aids_like(num_graphs=120, mean_vertices=8.0,
                                std_vertices=3.0, max_vertices=14,
                                seed=2017)
    workload = generate_type_b(graphs, TypeBConfig(
        num_queries=60, no_answer_probability=0.2,
        answer_pool_size=40, no_answer_pool_size=10, seed=424242,
    ))
    queries = [q.graph for q in workload.queries]

    snapshot_path = tmp_path / "serve.snap.jsonl"
    store = GraphStore.from_graphs(graphs)
    service = GraphCacheService(store, GCConfig(
        model="CON", matcher="vf2+", lock_mode="rw",
        max_sessions=WORKERS, snapshot_path=str(snapshot_path),
    ))
    server = CacheServer(service).start()
    try:
        report = run_loadgen("127.0.0.1", server.port, queries,
                             LoadgenConfig(
                                 qps=OFFERED_QPS,
                                 duration_seconds=DURATION_SECONDS,
                                 workers=WORKERS,
                                 mutation_fraction=MUTATION_FRACTION,
                                 seed=2017,
                             ))
    finally:
        drain = server.drain(timeout=15.0)

    assert report.errors == 0, f"{report.errors} failed requests"
    assert report.requests > 0
    assert report.mutations > 0, "mutation mix never fired"
    # The cache must be earning its keep under the Zipf mix.
    assert report.hit_rate > 0.5, f"hit rate {report.hit_rate:.2f}"
    # Sustained throughput: the sidecar keeps up with at least half the
    # offered rate even with client and server sharing one GIL.
    assert report.achieved_qps > OFFERED_QPS * 0.5, (
        f"achieved {report.achieved_qps:.0f} qps of "
        f"{OFFERED_QPS:.0f} offered")
    assert drain.in_flight_drained
    assert drain.snapshot_error is None
    assert snapshot_path.exists()

    payload = {
        "workload": "typeB-20% zipf(1.4)",
        "mutation_fraction": MUTATION_FRACTION,
        "loadgen_workers": WORKERS,
        "server_sessions": WORKERS,
        **report.to_dict(),
        "drain": {
            "in_flight_drained": drain.in_flight_drained,
            "snapshot_persisted": drain.snapshot_path is not None,
            "drain_seconds": drain.drain_seconds,
        },
    }
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(payload, indent=2, allow_nan=False) + "\n",
                            encoding="utf-8")

    from repro.bench.reporting import render_table
    report_table("BENCH_serve", render_table(
        f"serve sidecar under load ({payload['workload']}, "
        f"{MUTATION_FRACTION:.0%} mutations)",
        [{
            "offered qps": f"{report.offered_qps:.0f}",
            "achieved qps": f"{report.achieved_qps:.0f}",
            "requests": report.requests,
            "errors": report.errors,
            "hit rate": f"{report.hit_rate:.2f}",
            "p50 ms": f"{report.latency_ms['p50']:.1f}",
            "p95 ms": f"{report.latency_ms['p95']:.1f}",
            "p99 ms": f"{report.latency_ms['p99']:.1f}",
            "drain s": f"{drain.drain_seconds:.2f}",
        }],
    ))
