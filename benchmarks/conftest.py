"""Shared fixtures for the figure benchmarks.

All bench modules share one :class:`ExperimentHarness` so the run grid
(workload × matcher × model) is executed at most once per pytest session
regardless of how many figures slice it.  Rendered tables are collected
and printed in the terminal summary (visible even with output capture),
and written to ``benchmarks/results/``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.bench.harness import ExperimentHarness, current_scale

RESULTS_DIR = Path(__file__).parent / "results"

_TABLES: list[str] = []


@pytest.fixture(scope="session")
def harness() -> ExperimentHarness:
    return ExperimentHarness(current_scale())


@pytest.fixture(scope="session")
def report_table():
    """Register a rendered table for the terminal summary + results dir."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _register(name: str, table: str) -> None:
        _TABLES.append(table)
        (RESULTS_DIR / f"{name}.txt").write_text(table, encoding="utf-8")

    return _register


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _TABLES:
        return
    scale = current_scale()
    terminalreporter.write_sep(
        "=", f"GC+ paper figures (scale '{scale.name}')"
    )
    for table in _TABLES:
        terminalreporter.write_line("")
        for line in table.splitlines():
            terminalreporter.write_line(line)
