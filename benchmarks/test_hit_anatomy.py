"""§7.2 insight — hit anatomy: exact-match vs sub/supergraph hits.

The paper explains why ZU and UU achieve comparable speedups despite ZU
having ~2.5× the exact-match hits: only a few percent of exact hits
yield zero sub-iso tests (validity rarely covers the whole dataset under
churn), while UU compensates with ~2× the sub/supergraph matches.  This
bench reproduces those counters under CON.
"""

from __future__ import annotations

from repro.bench.experiments import hit_anatomy


def test_hit_anatomy(benchmark, harness, report_table):
    rows, table = benchmark.pedantic(
        lambda: hit_anatomy(harness), rounds=1, iterations=1
    )
    report_table("hit_anatomy", table)

    by_workload = {row["workload"]: row for row in rows}
    zz, zu, uu = by_workload["ZZ"], by_workload["ZU"], by_workload["UU"]

    # Skewed source selection must produce more exact-match hits than
    # uniform selection (the paper measures ~2.5× for ZU vs UU).
    assert zu["exact-hit queries"] > uu["exact-hit queries"], (
        "Zipf-skewed source selection should yield more exact-match hits"
    )
    assert zz["exact-hit queries"] >= zu["exact-hit queries"] * 0.5, (
        "ZZ should be at least comparably exact-match-prone to ZU"
    )
    # Every workload must exercise the sub/supergraph machinery too.
    for row in rows:
        assert row["containing hits"] > 0
        assert row["contained hits"] > 0
