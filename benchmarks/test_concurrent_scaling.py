"""Concurrent-serving benchmark: shared-cache throughput vs threads.

The acceptance trace is the paper's service scenario at test scale: a
seeded 500-query Type B workload over an AIDS-like dataset with change
batches interleaved at epoch barriers, served by 1 vs 8 worker threads
sharing one GC+ cache through :class:`ConcurrentDriver`.

Two things are measured and persisted to
``benchmarks/results/BENCH_concurrent.json``:

* **correctness** — the 8-thread answer multiset must equal the
  1-thread driver's on the identical trace (asserted here *and*, per
  stream index against an independent sequential replay, in
  ``tests/test_concurrent_service.py``);
* **throughput** — ≥ 2× with 8 threads.  The per-request service time
  (``IO_DELAY_S``, parsing/network emulation) is what threads overlap:
  the GC+ pipeline itself is pure Python and GIL-serialised, so the
  CPU section cannot scale on stock CPython — the win measured here is
  the request-overlap win a real deployment sees (a GIL-releasing
  matcher or a free-threaded build would extend it to the CPU section
  with no driver changes).  A zero-delay pair of cells is also recorded
  so the GIL reality stays visible in the artifact rather than hidden.

A third, zero-delay **process-backend** cell runs the same trace with
``workers=8, worker_backend="process"`` — Mverify fanned out across
worker processes instead of threads, the backend that actually breaks
the GIL bound.  Its answers must always match the sequential reference;
the ≥ 3× throughput gate only arms on hosts with at least that many
cores (``cpu_count`` is stored in the artifact alongside the cell).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.bench.harness import BenchScale, ExperimentHarness

RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_concurrent.json"

#: Emulated per-request service time outside the GC+ pipeline (6 ms —
#: a modest parse+network budget; threads overlap it).
IO_DELAY_S = 0.006
THREADS = 8
MIN_SPEEDUP = 2.0
#: Mverifier worker processes for the CPU-bound process-backend cell.
PROCESS_WORKERS = 8
#: Required process-backend speedup over the sequential baseline — only
#: asserted when the machine actually has the cores to show it (the
#: answer-identity check runs unconditionally; ``cpu_count`` is recorded
#: in the artifact so a 1-core CI cell is never mistaken for a regression).
MIN_PROCESS_SPEEDUP = 3.0

#: The acceptance trace: 500 Type B queries, small graphs so the
#: GIL-serialised CPU section stays well under the request budget.
CONCURRENT_SCALE = BenchScale(
    name="concurrent", num_graphs=120, mean_vertices=7.0,
    std_vertices=2.5, max_vertices=12, num_queries=500,
    num_batches=6, ops_per_batch=8,
    answer_pool_size=100, no_answer_pool_size=25,
)

WORKLOAD, MATCHER, MODEL = "20%", "vf2+", "CON"


def test_concurrent_throughput_scales(report_table):
    harness = ExperimentHarness(CONCURRENT_SCALE)

    # Service-shaped cells (threads overlap the per-request delay).
    speedup = harness.concurrent_speedup(WORKLOAD, MATCHER, MODEL,
                                         THREADS, io_delay=IO_DELAY_S)
    base = harness.run_concurrent(WORKLOAD, MATCHER, MODEL, 1,
                                  io_delay=IO_DELAY_S)
    concurrent = harness.run_concurrent(WORKLOAD, MATCHER, MODEL, THREADS,
                                        io_delay=IO_DELAY_S)

    # GIL-reality cells: the bare CPU-bound pipeline, no request delay.
    cpu_base = harness.run_concurrent(WORKLOAD, MATCHER, MODEL, 1)
    cpu_concurrent = harness.run_concurrent(WORKLOAD, MATCHER, MODEL,
                                            THREADS)
    assert (cpu_base.answer_multiset()
            == cpu_concurrent.answer_multiset()), (
        "answer multiset drifted between thread counts (cpu-bound cells)"
    )

    # Process-backend cell: same CPU-bound trace, one driver session,
    # but Mverify fanned out across PROCESS_WORKERS worker processes —
    # the backend that breaks the GIL bound the cell above documents.
    cpu_process = harness.run_concurrent(
        WORKLOAD, MATCHER, MODEL, 1,
        workers=PROCESS_WORKERS, worker_backend="process",
    )
    assert (cpu_base.answer_multiset()
            == cpu_process.answer_multiset()), (
        "process-backend answers drifted from the sequential reference"
    )
    process_speedup = (cpu_process.throughput_qps
                       / max(cpu_base.throughput_qps, 1e-12))
    cores = os.cpu_count() or 1

    payload = {
        "scale": CONCURRENT_SCALE.name,
        "workload": WORKLOAD,
        "matcher": MATCHER,
        "model": MODEL,
        "io_delay_ms": IO_DELAY_S * 1000.0,
        "service": {
            "1_thread": base.to_row(),
            f"{THREADS}_threads": concurrent.to_row(),
            "throughput_speedup": round(speedup, 3),
        },
        "cpu_bound_no_delay": {
            "1_thread": cpu_base.to_row(),
            f"{THREADS}_threads": cpu_concurrent.to_row(),
            "throughput_speedup": round(
                cpu_concurrent.throughput_qps
                / max(cpu_base.throughput_qps, 1e-12), 3),
        },
        "cpu_bound_process_backend": {
            "workers": PROCESS_WORKERS,
            "cpu_count": cores,
            f"{PROCESS_WORKERS}_processes": cpu_process.to_row(),
            "throughput_speedup": round(process_speedup, 3),
            "speedup_gate_active": cores >= PROCESS_WORKERS,
        },
    }
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(payload, indent=2, allow_nan=False) + "\n",
                            encoding="utf-8")

    rows = [
        {"cell": "service 1 thread", **base.to_row()},
        {"cell": f"service {THREADS} threads", **concurrent.to_row()},
        {"cell": "cpu-bound 1 thread", **cpu_base.to_row()},
        {"cell": f"cpu-bound {THREADS} threads", **cpu_concurrent.to_row()},
        {"cell": f"cpu-bound {PROCESS_WORKERS} processes",
         **cpu_process.to_row()},
    ]
    from repro.bench.reporting import render_table
    report_table(
        "BENCH_concurrent",
        render_table(
            f"concurrent serving ({WORKLOAD} Type B × {MATCHER} × {MODEL}; "
            f"request delay {IO_DELAY_S * 1000:.0f} ms; "
            f"service speedup {speedup:.2f}x)",
            rows,
        ),
    )

    assert speedup >= MIN_SPEEDUP, (
        f"{THREADS}-thread service throughput only {speedup:.2f}x the "
        f"1-thread driver (need >= {MIN_SPEEDUP}x)"
    )
    if cores >= PROCESS_WORKERS:
        assert process_speedup >= MIN_PROCESS_SPEEDUP, (
            f"{PROCESS_WORKERS}-process Mverify throughput only "
            f"{process_speedup:.2f}x sequential on a {cores}-core host "
            f"(need >= {MIN_PROCESS_SPEEDUP}x)"
        )
