"""Ablation — retrospective revalidation (§8 future work, beyond-paper).

Spending off-critical-path sub-iso tests to re-earn lost CGvalid bits
must never *hurt* critical-path test counts, and at reasonable budgets
should improve them (restored full validity re-enables zero-test
exact-match hits).
"""

from __future__ import annotations

from repro.bench.experiments import ablation_retro


def test_ablation_retro(benchmark, harness, report_table):
    rows, table = benchmark.pedantic(
        lambda: ablation_retro(harness), rounds=1, iterations=1
    )
    report_table("ablation_retro", table)

    by_budget = {row["retro budget"] for row in rows}
    assert 0 in by_budget
    baseline = next(r for r in rows if r["retro budget"] == 0)
    assert baseline["retro tests spent"] == 0
    # Critical-path test speedup must never regress vs plain CON
    # (revalidation is purely off the critical path).
    for row in rows:
        assert row["test speedup"] >= baseline["test speedup"] * 0.98, (
            f"retro budget {row['retro budget']} hurt the critical path: "
            f"{row['test speedup']:.2f} vs {baseline['test speedup']:.2f}"
        )
        if row["retro budget"] > 0:
            assert row["retro tests spent"] >= 0
