"""Figure 4 — GC+ speedup in query time.

One benchmark per Method M (VF2, VF2+, GraphQL).  Each computes the EVI
and CON query-time speedups over the bare method for all six workloads
(ZZ/ZU/UU and 0%/20%/50%), asserting answer equality between cached and
bare runs along the way, and checks the paper's headline shape:
**CON > EVI > 1** for every cell.
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import ALL_CATEGORIES, figure4
from repro.bench.harness import MATCHER_NAMES


@pytest.mark.parametrize("matcher", MATCHER_NAMES)
def test_fig4_speedups(benchmark, harness, report_table, matcher):
    def compute():
        return figure4(harness, matchers=(matcher,),
                       workloads=ALL_CATEGORIES)

    rows, table = benchmark.pedantic(compute, rounds=1, iterations=1)
    report_table(f"fig4_{matcher.replace('+', 'plus')}", table)

    for row in rows:
        workload = row["workload"]
        evi, con = row["EVI speedup"], row["CON speedup"]
        assert evi > 1.0, (
            f"EVI should beat bare {matcher} on {workload}, got {evi:.2f}"
        )
        # Wall-clock is noisy at small scales; allow per-cell jitter but
        # require CON to be clearly ahead where it matters.
        assert con > 1.0, (
            f"CON should beat bare {matcher} on {workload}, got {con:.2f}"
        )
        assert con > evi * 0.75, (
            f"CON should not lose to EVI on ({matcher}, {workload}): "
            f"CON {con:.2f} vs EVI {evi:.2f}"
        )
    mean_evi = sum(r["EVI speedup"] for r in rows) / len(rows)
    mean_con = sum(r["CON speedup"] for r in rows) / len(rows)
    assert mean_con > mean_evi, (
        f"paper shape violated for {matcher}: mean CON {mean_con:.2f} "
        f"<= mean EVI {mean_evi:.2f}"
    )
