"""Supergraph-query workload — the paper's inverse logic, end to end.

The paper presents pruning for subgraph queries and states the
supergraph case is the exact inverse (§6.2).  This bench runs a full
supergraph workload (large query patterns over a dataset of small
fragments) under both cache models, asserting answer equality with the
bare method and the usual CON > EVI ordering on sub-iso tests.
"""

from __future__ import annotations

from repro.bench.experiments import supergraph_workload


def test_supergraph_workload(benchmark, harness, report_table):
    rows, table = benchmark.pedantic(
        lambda: supergraph_workload(harness), rounds=1, iterations=1
    )
    report_table("supergraph", table)

    by_model = {row["model"]: row for row in rows}
    assert set(by_model) == {"EVI", "CON"}
    assert by_model["EVI"]["test speedup"] > 1.0
    assert by_model["CON"]["test speedup"] >= by_model["EVI"]["test speedup"]
