"""Figure 6 — average execution time and overhead per query (VF2 base).

Asserts the two §7.2 conclusions:

* the CON-exclusive consistency work (Algorithms 1 + 2) is a small share
  of CON overhead (the paper measures <1% at full scale; we allow <25%
  at reduced scale, where the constant costs loom larger);
* per-query overhead is small relative to per-query benefit — "CON
  sweeps EVI in query processing speedup with a negligible additional
  overhead".
"""

from __future__ import annotations

from repro.bench.experiments import figure6


def test_fig6_time_breakdown(benchmark, harness, report_table):
    rows, table = benchmark.pedantic(
        lambda: figure6(harness), rounds=1, iterations=1
    )
    report_table("fig6", table)

    for row in rows:
        workload = row["workload"]
        base_ms = row["vf2 qtime ms"]
        con_ms = row["CON qtime ms"]
        con_overhead = row["CON overhead ms"]
        con_exclusive_pct = row["CON-excl % of overhead"]
        assert con_ms < base_ms, (
            f"CON query time should undercut bare VF2 on {workload}"
        )
        assert con_overhead < base_ms, (
            f"CON overhead must be small vs baseline query time on "
            f"{workload}: {con_overhead:.2f}ms vs {base_ms:.2f}ms"
        )
        saved_ms = base_ms - con_ms
        assert con_overhead < saved_ms, (
            f"CON overhead ({con_overhead:.2f}ms) should not eat the "
            f"benefit ({saved_ms:.2f}ms) on {workload}"
        )
        assert con_exclusive_pct < 25.0, (
            f"Algorithms 1+2 should be a minor share of CON overhead on "
            f"{workload}, got {con_exclusive_pct:.1f}%"
        )
