"""Ablation — cache capacity.

The paper fixes a "meagre" 100-entry cache; this ablation shows the
speedup's dependence on capacity: non-trivial benefit already at small
capacities and (weakly) monotone growth up to the workload's working-set
size.
"""

from __future__ import annotations

from repro.bench.experiments import ablation_cache_size


def test_ablation_cache_size(benchmark, harness, report_table):
    rows, table = benchmark.pedantic(
        lambda: ablation_cache_size(harness), rounds=1, iterations=1
    )
    report_table("ablation_cache_size", table)

    speedups = [row["test speedup"] for row in rows]
    capacities = [row["cache capacity"] for row in rows]
    assert capacities == sorted(capacities)
    assert all(s > 1.0 for s in speedups), "caching must always help"
    # Larger caches must not be substantially worse than smaller ones.
    for small, large in zip(speedups, speedups[1:]):
        assert large >= small * 0.9, (
            f"speedup should not collapse as capacity grows: {speedups}"
        )