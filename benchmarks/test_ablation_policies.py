"""Ablation — cache replacement policies (paper §7.1).

The paper uses HD because "its performance is always better or on par
with the best alternative".  At reduced scale we assert the weaker but
still meaningful form: HD's test speedup is within 15% of the best
policy's, and every policy beats the bare method.
"""

from __future__ import annotations

from repro.bench.experiments import ablation_policies


def test_ablation_policies(benchmark, harness, report_table):
    rows, table = benchmark.pedantic(
        lambda: ablation_policies(harness), rounds=1, iterations=1
    )
    report_table("ablation_policies", table)

    by_policy = {row["policy"]: row for row in rows}
    assert set(by_policy) == {"hd", "pin", "pinc", "lru", "lfu"}
    for row in rows:
        assert row["test speedup"] > 1.0, (
            f"policy {row['policy']} should still beat the bare method"
        )
    best = max(row["test speedup"] for row in rows)
    hd = by_policy["hd"]["test speedup"]
    assert hd >= best * 0.85, (
        f"HD should be on par with the best policy: HD {hd:.2f} vs "
        f"best {best:.2f}"
    )
