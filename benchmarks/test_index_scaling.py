"""Discovery-index microbenchmark: bucketed QueryIndex vs linear scan.

GC+'s value proposition is that discovery + pruning is cheap relative to
the sub-iso tests it alleviates.  The historical ``QueryIndex`` ran a
full feature check against *every* cached entry per lookup, so at large
cache sizes the discovery prefilter itself became the bottleneck.  This
microbenchmark populates indices at increasing entry counts with
realistic (Type A workload) cached queries, probes both lookup
directions, and

* asserts the bucketed index returns **identical candidate pools** to
  the linear scan (same entries, same order) on every probe, and
* times both implementations, asserting the bucketed index beats the
  scan by ≥ 5× at 1000 cached entries.

The measurements land in ``benchmarks/results/BENCH_index.json`` (the
CI perf-smoke job uploads it as an artifact) so the index's scaling
trajectory is tracked over time.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.cache.entry import CacheEntry, QueryType
from repro.cache.query_index import QueryIndex
from repro.datasets.aids import generate_aids_like
from repro.graphs.features import GraphFeatures
from repro.util.bitset import BitSet
from repro.workloads.typea import generate_type_a

RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_index.json"

ENTRY_COUNTS = (250, 1000)
NUM_PROBES = 50
#: Acceptance bar at 1000 entries.  Local runs measure well above this;
#: the margin absorbs shared-CI timing noise.
MIN_SPEEDUP_AT_1K = 5.0


class LinearScanIndex:
    """The pre-index reference implementation: full scan per lookup."""

    def __init__(self) -> None:
        self._entries: dict[int, CacheEntry] = {}

    def add(self, entry: CacheEntry) -> None:
        self._entries[entry.entry_id] = entry

    def candidate_supergraphs(self, features: GraphFeatures):
        return [e for e in self._entries.values()
                if features.may_be_subgraph_of(e.features)]

    def candidate_subgraphs(self, features: GraphFeatures):
        return [e for e in self._entries.values()
                if e.features.may_be_subgraph_of(features)]


def _build_population(total: int):
    """Realistic cached queries + probes: Type A random-walk extracts
    over an AIDS-like dataset, the exact query distribution the cache
    holds in the paper's experiments."""
    graphs = generate_aids_like(
        num_graphs=300, mean_vertices=24.0, std_vertices=10.0,
        max_vertices=80, seed=2017,
    )
    workload = generate_type_a(graphs, total + NUM_PROBES, "ZZ", seed=7)
    pool = [q.graph for q in workload.queries]
    return pool[:total], pool[total:total + NUM_PROBES]


def _probe_all(index, probe_features) -> tuple[list, float]:
    """(pools, elapsed): both lookup directions for every probe."""
    start = time.perf_counter()
    pools = []
    for feats in probe_features:
        pools.append(index.candidate_supergraphs(feats))
        pools.append(index.candidate_subgraphs(feats))
    return pools, time.perf_counter() - start


def _time_index(index, probe_features, repeats: int = 3):
    """Best-of-``repeats`` timing plus the (repeat-invariant) pools."""
    pools, best = _probe_all(index, probe_features)
    for _ in range(repeats - 1):
        _, elapsed = _probe_all(index, probe_features)
        best = min(best, elapsed)
    return pools, best


def test_bucketed_index_scaling(report_table):
    rows = []
    for count in ENTRY_COUNTS:
        cached, probes = _build_population(count)
        bucketed = QueryIndex()
        linear = LinearScanIndex()
        for i, graph in enumerate(cached):
            entry = CacheEntry(
                entry_id=i, query=graph, query_type=QueryType.SUBGRAPH,
                answer=BitSet(), valid=BitSet(), created_at=i,
            )
            bucketed.add(entry)
            linear.add(entry)
        probe_features = [GraphFeatures.of(p) for p in probes]

        linear_pools, linear_s = _time_index(linear, probe_features)
        bucketed_pools, bucketed_s = _time_index(bucketed, probe_features)

        # Identical candidate pools: same entries, same order (ascending
        # entry_id — the order the linear dict-scan produces).
        assert len(linear_pools) == len(bucketed_pools)
        for expect, got in zip(linear_pools, bucketed_pools):
            assert [e.entry_id for e in expect] == \
                [e.entry_id for e in got]

        speedup = linear_s / max(bucketed_s, 1e-12)
        rows.append({
            "entries": count,
            "probes": NUM_PROBES,
            "linear_seconds": round(linear_s, 6),
            "bucketed_seconds": round(bucketed_s, 6),
            "speedup": round(speedup, 2),
        })

    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(
        json.dumps({"benchmark": "discovery_index_scaling",
                    "min_speedup_at_1k": MIN_SPEEDUP_AT_1K,
                    "rows": rows}, indent=2, allow_nan=False),
        encoding="utf-8",
    )
    report_table(
        "BENCH_index",
        "discovery index scaling (linear scan vs bucketed)\n"
        + "\n".join(
            f"  entries={r['entries']:>5}  linear={r['linear_seconds']:.4f}s"
            f"  bucketed={r['bucketed_seconds']:.4f}s"
            f"  speedup={r['speedup']:.1f}x"
            for r in rows
        ),
    )

    at_1k = next(r for r in rows if r["entries"] == 1000)
    assert at_1k["speedup"] >= MIN_SPEEDUP_AT_1K, (
        f"bucketed index only {at_1k['speedup']:.1f}x faster than the "
        f"linear scan at 1000 entries (need ≥ {MIN_SPEEDUP_AT_1K}x): "
        f"{at_1k}"
    )
