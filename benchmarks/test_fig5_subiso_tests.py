"""Figure 5 — GC+ speedup in the number of sub-iso tests.

Unlike Figure 4 this metric is deterministic (no wall-clock noise), so
the paper's ordering — **CON > EVI > 1** for every workload — is asserted
strictly.  The paper's method-independence claim (*"whatever SI method
being the Method M, GC+ results exactly the same pruned candidate set
for each query"*) is asserted inside :func:`figure5` by comparing VF2 and
VF2+ test counts.
"""

from __future__ import annotations

from repro.bench.experiments import PAPER_FIG5, figure5


def test_fig5_subiso_speedups(benchmark, harness, report_table):
    rows, table = benchmark.pedantic(
        lambda: figure5(harness), rounds=1, iterations=1
    )
    report_table("fig5", table)

    assert {row["workload"] for row in rows} == set(PAPER_FIG5)
    for row in rows:
        workload = row["workload"]
        evi, con = row["EVI speedup"], row["CON speedup"]
        assert evi > 1.0, f"EVI test speedup must exceed 1 on {workload}"
        assert con > evi, (
            f"CON must strictly beat EVI in tests on {workload}: "
            f"{con:.2f} vs {evi:.2f}"
        )
