"""Ablation — churn intensity: the paper's central qualitative claim.

EVI's benefit collapses as dataset changes become more frequent (the
cache is purged ever more often), while CON degrades gracefully (only
*touched* relations lose validity).  The gap between the two is the
value of consistency tracking; it must widen with churn.
"""

from __future__ import annotations

from repro.bench.experiments import ablation_churn


def test_ablation_churn(benchmark, harness, report_table):
    rows, table = benchmark.pedantic(
        lambda: ablation_churn(harness), rounds=1, iterations=1
    )
    report_table("ablation_churn", table)

    # rows are ordered by increasing churn multiplier (0, 0.5, 1, 2, 4).
    no_churn = rows[0]
    heaviest = rows[-1]
    # With no churn the two models are the same machine (CGvalid never
    # degrades; EVI never purges) — test counts must match exactly.
    assert abs(no_churn["EVI test speedup"]
               - no_churn["CON test speedup"]) < 1e-9, (
        "EVI and CON must coincide when the dataset never changes"
    )
    # Under churn, CON must hold a strictly growing advantage.
    gaps = [row["CON test speedup"] / row["EVI test speedup"]
            for row in rows]
    assert gaps[-1] > gaps[0], "CON's advantage should grow with churn"
    assert heaviest["CON test speedup"] > heaviest["EVI test speedup"], (
        "CON must beat EVI under heavy churn"
    )
    assert heaviest["EVI test speedup"] < no_churn["EVI test speedup"], (
        "EVI must degrade under heavy churn"
    )
